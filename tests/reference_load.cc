#include "reference_util.h"

namespace wimpi::tpch_ref {
namespace {
std::string S(const storage::Column& c, int64_t i) {
  return std::string(c.StringAt(i));
}
}  // namespace

std::vector<LineitemRow> LoadLineitem(const engine::Database& db) {
  const auto& t = db.table("lineitem");
  std::vector<LineitemRow> rows(t.num_rows());
  for (int64_t i = 0; i < t.num_rows(); ++i) {
    LineitemRow& r = rows[i];
    r.orderkey = t.column("l_orderkey").I64Data()[i];
    r.partkey = t.column("l_partkey").I32Data()[i];
    r.suppkey = t.column("l_suppkey").I32Data()[i];
    r.linenumber = t.column("l_linenumber").I32Data()[i];
    r.qty = t.column("l_quantity").F64Data()[i];
    r.price = t.column("l_extendedprice").F64Data()[i];
    r.disc = t.column("l_discount").F64Data()[i];
    r.tax = t.column("l_tax").F64Data()[i];
    r.rf = S(t.column("l_returnflag"), i);
    r.ls = S(t.column("l_linestatus"), i);
    r.ship = t.column("l_shipdate").I32Data()[i];
    r.commit = t.column("l_commitdate").I32Data()[i];
    r.receipt = t.column("l_receiptdate").I32Data()[i];
    r.instr = S(t.column("l_shipinstruct"), i);
    r.mode = S(t.column("l_shipmode"), i);
  }
  return rows;
}

std::vector<OrderRow> LoadOrders(const engine::Database& db) {
  const auto& t = db.table("orders");
  std::vector<OrderRow> rows(t.num_rows());
  for (int64_t i = 0; i < t.num_rows(); ++i) {
    OrderRow& r = rows[i];
    r.orderkey = t.column("o_orderkey").I64Data()[i];
    r.custkey = t.column("o_custkey").I32Data()[i];
    r.status = S(t.column("o_orderstatus"), i);
    r.totalprice = t.column("o_totalprice").F64Data()[i];
    r.orderdate = t.column("o_orderdate").I32Data()[i];
    r.priority = S(t.column("o_orderpriority"), i);
    r.shippriority = t.column("o_shippriority").I32Data()[i];
    r.comment = S(t.column("o_comment"), i);
  }
  return rows;
}

std::vector<CustomerRow> LoadCustomer(const engine::Database& db) {
  const auto& t = db.table("customer");
  std::vector<CustomerRow> rows(t.num_rows());
  for (int64_t i = 0; i < t.num_rows(); ++i) {
    CustomerRow& r = rows[i];
    r.custkey = t.column("c_custkey").I32Data()[i];
    r.name = S(t.column("c_name"), i);
    r.address = S(t.column("c_address"), i);
    r.nationkey = t.column("c_nationkey").I32Data()[i];
    r.phone = S(t.column("c_phone"), i);
    r.acctbal = t.column("c_acctbal").F64Data()[i];
    r.mktsegment = S(t.column("c_mktsegment"), i);
    r.comment = S(t.column("c_comment"), i);
  }
  return rows;
}

std::vector<SupplierRow> LoadSupplier(const engine::Database& db) {
  const auto& t = db.table("supplier");
  std::vector<SupplierRow> rows(t.num_rows());
  for (int64_t i = 0; i < t.num_rows(); ++i) {
    SupplierRow& r = rows[i];
    r.suppkey = t.column("s_suppkey").I32Data()[i];
    r.name = S(t.column("s_name"), i);
    r.address = S(t.column("s_address"), i);
    r.nationkey = t.column("s_nationkey").I32Data()[i];
    r.phone = S(t.column("s_phone"), i);
    r.acctbal = t.column("s_acctbal").F64Data()[i];
    r.comment = S(t.column("s_comment"), i);
  }
  return rows;
}

std::vector<PartRow> LoadPart(const engine::Database& db) {
  const auto& t = db.table("part");
  std::vector<PartRow> rows(t.num_rows());
  for (int64_t i = 0; i < t.num_rows(); ++i) {
    PartRow& r = rows[i];
    r.partkey = t.column("p_partkey").I32Data()[i];
    r.name = S(t.column("p_name"), i);
    r.mfgr = S(t.column("p_mfgr"), i);
    r.brand = S(t.column("p_brand"), i);
    r.type = S(t.column("p_type"), i);
    r.size = t.column("p_size").I32Data()[i];
    r.container = S(t.column("p_container"), i);
    r.retailprice = t.column("p_retailprice").F64Data()[i];
  }
  return rows;
}

std::vector<PartsuppRow> LoadPartsupp(const engine::Database& db) {
  const auto& t = db.table("partsupp");
  std::vector<PartsuppRow> rows(t.num_rows());
  for (int64_t i = 0; i < t.num_rows(); ++i) {
    PartsuppRow& r = rows[i];
    r.partkey = t.column("ps_partkey").I32Data()[i];
    r.suppkey = t.column("ps_suppkey").I32Data()[i];
    r.availqty = t.column("ps_availqty").I32Data()[i];
    r.supplycost = t.column("ps_supplycost").F64Data()[i];
  }
  return rows;
}

std::vector<NationRow> LoadNation(const engine::Database& db) {
  const auto& t = db.table("nation");
  std::vector<NationRow> rows(t.num_rows());
  for (int64_t i = 0; i < t.num_rows(); ++i) {
    rows[i].nationkey = t.column("n_nationkey").I32Data()[i];
    rows[i].name = S(t.column("n_name"), i);
    rows[i].regionkey = t.column("n_regionkey").I32Data()[i];
  }
  return rows;
}

std::vector<RegionRow> LoadRegion(const engine::Database& db) {
  const auto& t = db.table("region");
  std::vector<RegionRow> rows(t.num_rows());
  for (int64_t i = 0; i < t.num_rows(); ++i) {
    rows[i].regionkey = t.column("r_regionkey").I32Data()[i];
    rows[i].name = S(t.column("r_name"), i);
  }
  return rows;
}

int32_t RefNationKey(const engine::Database& db, const std::string& name) {
  for (const auto& n : LoadNation(db)) {
    if (n.name == name) return n.nationkey;
  }
  return -1;
}

std::vector<int32_t> RefRegionNations(const engine::Database& db,
                                      const std::string& region) {
  int32_t rkey = -1;
  for (const auto& r : LoadRegion(db)) {
    if (r.name == region) rkey = r.regionkey;
  }
  std::vector<int32_t> out;
  for (const auto& n : LoadNation(db)) {
    if (n.regionkey == rkey) out.push_back(n.nationkey);
  }
  return out;
}

RefResult RunReference(int q, const engine::Database& db) {
  switch (q) {
    case 1: return RefQ1(db);
    case 2: return RefQ2(db);
    case 3: return RefQ3(db);
    case 4: return RefQ4(db);
    case 5: return RefQ5(db);
    case 6: return RefQ6(db);
    case 7: return RefQ7(db);
    case 8: return RefQ8(db);
    case 9: return RefQ9(db);
    case 10: return RefQ10(db);
    case 11: return RefQ11(db);
    case 12: return RefQ12(db);
    case 13: return RefQ13(db);
    case 14: return RefQ14(db);
    case 15: return RefQ15(db);
    case 16: return RefQ16(db);
    case 17: return RefQ17(db);
    case 18: return RefQ18(db);
    case 19: return RefQ19(db);
    case 20: return RefQ20(db);
    case 21: return RefQ21(db);
    case 22: return RefQ22(db);
    default: return {};
  }
}

}  // namespace wimpi::tpch_ref
