// End-to-end validation: every TPC-H query, executed by the vectorized
// engine, must match an independent row-at-a-time reference implementation.
#include "engine/database.h"
#include "gtest/gtest.h"
#include "reference.h"
#include "test_util.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace wimpi {
namespace {

const engine::Database& TestDb() {
  static engine::Database* db = [] {
    tpch::GenOptions opts;
    opts.scale_factor = 0.02;
    return new engine::Database(tpch::GenerateDatabase(opts));
  }();
  return *db;
}

class TpchQueryTest : public ::testing::TestWithParam<int> {};

TEST_P(TpchQueryTest, MatchesReference) {
  const int q = GetParam();
  exec::QueryStats stats;
  const exec::Relation result = tpch::RunQuery(q, TestDb(), &stats);
  const tpch_ref::RefResult expected = tpch_ref::RunReference(q, TestDb());
  ExpectRefResultsEqual(ToRefResult(result), expected);
  // Every query must do some accountable work.
  EXPECT_GT(stats.TotalComputeOps(), 0.0);
  EXPECT_GT(stats.TotalSeqBytes(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllQueries, TpchQueryTest,
                         ::testing::Range(1, 23),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Q" + std::to_string(info.param);
                         });

TEST(TpchQueryMeta, Sf10SubsetIsThePaperSet) {
  const std::vector<int> expected = {1, 3, 4, 5, 6, 13, 14, 19};
  for (int q = 1; q <= 22; ++q) {
    const bool want =
        std::find(expected.begin(), expected.end(), q) != expected.end();
    EXPECT_EQ(tpch::InSf10Subset(q), want) << "Q" << q;
  }
}

TEST(TpchQueryStats, Q1IsMemoryBoundShape) {
  // Q1 scans most of lineitem: sequential bytes should dominate random
  // accesses by a wide margin (this is what makes it the paper's worst
  // query on the Pi).
  exec::QueryStats stats;
  tpch::RunQuery(1, TestDb(), &stats);
  EXPECT_GT(stats.TotalSeqBytes(), 100 * stats.TotalRandCount());
}

}  // namespace
}  // namespace wimpi
