#include <set>

#include "common/cli.h"
#include "common/date.h"
#include "common/decimal.h"
#include "common/hash.h"
#include "common/json.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "gtest/gtest.h"

namespace wimpi {
namespace {

// ---------- dates ----------

TEST(DateTest, KnownAnchors) {
  EXPECT_EQ(DateFromCivil(1970, 1, 1), 0);
  EXPECT_EQ(DateFromCivil(1970, 1, 2), 1);
  EXPECT_EQ(DateFromCivil(1969, 12, 31), -1);
  EXPECT_EQ(FormatDate(ParseDate("1992-01-01")), "1992-01-01");
  EXPECT_EQ(FormatDate(ParseDate("1998-12-31")), "1998-12-31");
}

TEST(DateTest, RoundTripProperty) {
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const auto d = static_cast<DateValue>(rng.Uniform(-200000, 200000));
    const CivilDate c = CivilFromDate(d);
    EXPECT_EQ(DateFromCivil(c.year, c.month, c.day), d);
    EXPECT_GE(c.month, 1);
    EXPECT_LE(c.month, 12);
    EXPECT_GE(c.day, 1);
    EXPECT_LE(c.day, 31);
  }
}

TEST(DateTest, ParseFormatRoundTrip) {
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const auto d = static_cast<DateValue>(rng.Uniform(0, 20000));
    EXPECT_EQ(ParseDate(FormatDate(d)), d);
  }
}

TEST(DateTest, LeapYears) {
  EXPECT_EQ(DateFromCivil(2000, 3, 1) - DateFromCivil(2000, 2, 1), 29);
  EXPECT_EQ(DateFromCivil(1900, 3, 1) - DateFromCivil(1900, 2, 1), 28);
  EXPECT_EQ(DateFromCivil(1996, 3, 1) - DateFromCivil(1996, 2, 1), 29);
}

TEST(DateTest, AddMonthsClampsDay) {
  EXPECT_EQ(FormatDate(DateAddMonths(ParseDate("1994-01-31"), 1)),
            "1994-02-28");
  EXPECT_EQ(FormatDate(DateAddMonths(ParseDate("1996-01-31"), 1)),
            "1996-02-29");
  EXPECT_EQ(FormatDate(DateAddMonths(ParseDate("1994-03-15"), 12)),
            "1995-03-15");
  EXPECT_EQ(FormatDate(DateAddMonths(ParseDate("1994-03-15"), -3)),
            "1993-12-15");
}

TEST(DateTest, YearExtraction) {
  EXPECT_EQ(DateYear(ParseDate("1995-06-17")), 1995);
  EXPECT_EQ(DateYear(ParseDate("1992-01-01")), 1992);
}

// ---------- LIKE ----------

struct LikeCase {
  const char* value;
  const char* pattern;
  bool expect;
};

class LikeTest : public ::testing::TestWithParam<LikeCase> {};

TEST_P(LikeTest, Matches) {
  const LikeCase& c = GetParam();
  EXPECT_EQ(LikeMatch(c.value, c.pattern), c.expect)
      << c.value << " LIKE " << c.pattern;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LikeTest,
    ::testing::Values(
        LikeCase{"hello", "hello", true},
        LikeCase{"hello", "h%", true},
        LikeCase{"hello", "%o", true},
        LikeCase{"hello", "%ell%", true},
        LikeCase{"hello", "h_llo", true},
        LikeCase{"hello", "h__lo", true},
        LikeCase{"hello", "", false},
        LikeCase{"", "%", true},
        LikeCase{"", "", true},
        LikeCase{"hello", "%x%", false},
        LikeCase{"MEDIUM POLISHED TIN", "MEDIUM POLISHED%", true},
        LikeCase{"PROMO BRUSHED STEEL", "PROMO%", true},
        LikeCase{"a special deal with requests", "%special%requests%", true},
        LikeCase{"requests special", "%special%requests%", false},
        LikeCase{"special requests", "%special%requests%", true},
        LikeCase{"abc", "%%", true},
        LikeCase{"abc", "a%b%c", true},
        LikeCase{"aXbXc", "a%b%c", true},
        LikeCase{"ab", "a_b", false},
        LikeCase{"forest green", "forest%", true},
        LikeCase{"old forest", "forest%", false}));

TEST(StringsTest, Helpers) {
  EXPECT_TRUE(StartsWith("PROMO PLATED", "PROMO"));
  EXPECT_FALSE(StartsWith("PR", "PROMO"));
  EXPECT_TRUE(EndsWith("ECONOMY BRASS", "BRASS"));
  EXPECT_TRUE(Contains("dark green linen", "green"));
  EXPECT_FALSE(Contains("gree", "green"));
  EXPECT_EQ(Split("a|b||c", '|'),
            (std::vector<std::string>{"a", "b", "", "c"}));
}

// ---------- RNG ----------

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformBoundsAndCoverage) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.Uniform(3, 10);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 10);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

// ---------- hash ----------

TEST(HashTest, IntMixSpreadsLowBits) {
  std::set<uint64_t> buckets;
  for (uint64_t i = 0; i < 1024; ++i) buckets.insert(HashInt64(i) & 1023);
  EXPECT_GT(buckets.size(), 600u);  // near-uniform spread
}

TEST(HashTest, StringHashDiffers) {
  EXPECT_NE(HashString("AIR"), HashString("AIR REG"));
  EXPECT_EQ(HashString("MAIL"), HashString("MAIL"));
}

// ---------- money ----------

TEST(MoneyTest, Arithmetic) {
  const Money a = Money::FromCents(12345);
  EXPECT_EQ(a.ToString(), "123.45");
  EXPECT_EQ((a * 2).cents(), 24690);
  EXPECT_EQ((a + Money::FromUnits(1)).cents(), 12445);
  EXPECT_EQ((Money::FromCents(-505)).ToString(), "-5.05");
  EXPECT_NEAR(a.ToDouble(), 123.45, 1e-12);
}

// ---------- table printer ----------

TEST(TablePrinterTest, AlignsAndFormats) {
  TablePrinter t({"a", "bb"});
  t.AddRow({"1", "2"});
  t.AddSeparator();
  t.AddRow({"333", "4"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| a   | bb |"), std::string::npos);
  EXPECT_NE(s.find("| 333 | 4  |"), std::string::npos);
  EXPECT_EQ(TablePrinter::Fixed(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::Multiplier(123.4), "123x");
  EXPECT_EQ(TablePrinter::Multiplier(12.34), "12.3x");
  EXPECT_EQ(TablePrinter::Multiplier(1.234), "1.23x");
}

// ---------- command line ----------

TEST(CommandLineTest, ParsesFlagsAndPositional) {
  // Note: a bare flag followed by a non-flag token consumes it as a value
  // ("--nodes 12"), so trailing bool flags must use "--flag=true" or come
  // last.
  const char* argv[] = {"prog", "input.txt", "--sf=0.5", "--nodes", "12",
                        "--verbose"};
  CommandLine cli(6, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(cli.GetDouble("sf", 1.0), 0.5);
  EXPECT_EQ(cli.GetInt("nodes", 0), 12);
  EXPECT_TRUE(cli.GetBool("verbose", false));
  EXPECT_FALSE(cli.GetBool("quiet", false));
  EXPECT_EQ(cli.GetString("missing", "d"), "d");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "input.txt");
}

// ---------- json ----------

TEST(JsonTest, Escape) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonTest, NumberRoundTripsShortest) {
  EXPECT_EQ(JsonNumber(0.0), "0");
  EXPECT_EQ(JsonNumber(1.5), "1.5");
  EXPECT_EQ(JsonNumber(-3.0), "-3");
  // Shortest representation that parses back exactly.
  for (const double d : {0.1, 1.0 / 3.0, 12345.6789, 1e-9, 2.5e20}) {
    EXPECT_DOUBLE_EQ(std::stod(JsonNumber(d)), d);
  }
  EXPECT_EQ(JsonNumber(0.1), "0.1");  // not 0.10000000000000001
}

TEST(JsonTest, WriterProducesValidNesting) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").String("q\"1\"");
  w.Key("n").Int(42);
  w.Key("x").Double(0.5);
  w.Key("ok").Bool(true);
  w.Key("none").Null();
  w.Key("arr").BeginArray();
  w.Int(1);
  w.Int(2);
  w.EndArray();
  w.Key("obj").BeginObject();
  w.Key("k").String("v");
  w.EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"name\":\"q\\\"1\\\"\",\"n\":42,\"x\":0.5,\"ok\":true,"
            "\"none\":null,\"arr\":[1,2],\"obj\":{\"k\":\"v\"}}");
}

TEST(JsonTest, ParseRoundTrip) {
  JsonWriter w;
  w.BeginObject();
  w.Key("s").String("a\nb");
  w.Key("d").Double(0.25);
  w.Key("list").BeginArray();
  w.Double(1);
  w.Double(2.5);
  w.EndArray();
  w.EndObject();

  std::string error;
  JsonValue v;
  ASSERT_TRUE(JsonValue::Parse(w.str(), &v, &error)) << error;
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.GetString("s", ""), "a\nb");
  EXPECT_DOUBLE_EQ(v.GetDouble("d", -1), 0.25);
  const JsonValue* list = v.Find("list");
  ASSERT_NE(list, nullptr);
  ASSERT_TRUE(list->is_array());
  ASSERT_EQ(list->AsArray().size(), 2u);
  EXPECT_DOUBLE_EQ(list->AsArray()[1].AsDouble(), 2.5);
}

TEST(JsonTest, ParseRejectsMalformed) {
  std::string error;
  JsonValue v;
  EXPECT_FALSE(JsonValue::Parse("{\"a\":}", &v, &error));
  EXPECT_FALSE(JsonValue::Parse("[1,2", &v, &error));
  EXPECT_FALSE(JsonValue::Parse("", &v, &error));
  EXPECT_FALSE(JsonValue::Parse("{} trailing", &v, &error));
  EXPECT_FALSE(error.empty());
}

TEST(JsonTest, ParseUnicodeEscapes) {
  std::string error;
  JsonValue v;
  ASSERT_TRUE(JsonValue::Parse("\"a\\u00e9b\"", &v, &error)) << error;
  ASSERT_TRUE(v.is_string());
  EXPECT_EQ(v.AsString(), "a\xc3\xa9\x62");  // e-acute as UTF-8
}

}  // namespace
}  // namespace wimpi
