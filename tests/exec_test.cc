// Operator-level tests: every vectorized operator is validated against a
// naive oracle over randomized data (property style, parameterized by
// seed).
#include <map>
#include <set>
#include <unordered_map>

#include "common/date.h"
#include "common/rng.h"
#include "exec/aggregate.h"
#include "exec/expr.h"
#include "exec/filter.h"
#include "exec/join.h"
#include "exec/sort.h"
#include "gtest/gtest.h"
#include "storage/table.h"

namespace wimpi::exec {
namespace {

using storage::Column;
using storage::DataType;
using storage::Schema;
using storage::Table;

Table RandomTable(int64_t rows, uint64_t seed) {
  Schema schema({{"i32", DataType::kInt32},
                 {"i64", DataType::kInt64},
                 {"f64", DataType::kFloat64},
                 {"date", DataType::kDate},
                 {"str", DataType::kString}});
  Table t("rand", schema);
  Rng rng(seed);
  const char* words[] = {"AIR", "MAIL", "SHIP", "RAIL", "TRUCK", "FOB"};
  for (int64_t i = 0; i < rows; ++i) {
    t.column(0).AppendInt32(static_cast<int32_t>(rng.Uniform(-50, 50)));
    t.column(1).AppendInt64(rng.Uniform(0, 1000));
    t.column(2).AppendFloat64(rng.NextDouble() * 100 - 50);
    t.column(3).AppendInt32(static_cast<int32_t>(rng.Uniform(8000, 9000)));
    t.column(4).AppendString(words[rng.Uniform(0, 5)]);
  }
  t.FinishLoad();
  return t;
}

class ExecPropertyTest : public ::testing::TestWithParam<uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, ExecPropertyTest,
                         ::testing::Values(1, 2, 3, 17, 99));

TEST_P(ExecPropertyTest, FilterMatchesOracle) {
  const Table t = RandomTable(4000, GetParam());
  const ColumnSource src(t);
  QueryStats stats;
  const SelVec sel = Filter(
      src,
      {Predicate::CmpI32("i32", CmpOp::kGe, 0),
       Predicate::BetweenF64("f64", -10, 30),
       Predicate::StrIn("str", {"AIR", "MAIL"})},
      &stats);

  SelVec expected;
  for (int64_t i = 0; i < t.num_rows(); ++i) {
    const bool ok = t.column(0).I32Data()[i] >= 0 &&
                    t.column(2).F64Data()[i] >= -10 &&
                    t.column(2).F64Data()[i] <= 30 &&
                    (t.column(4).StringAt(i) == "AIR" ||
                     t.column(4).StringAt(i) == "MAIL");
    if (ok) expected.push_back(static_cast<int32_t>(i));
  }
  EXPECT_EQ(sel, expected);
  EXPECT_GE(stats.ops.size(), 3u);
}

TEST_P(ExecPropertyTest, EveryPredicateKindMatchesOracle) {
  const Table t = RandomTable(2000, GetParam() + 100);
  const ColumnSource src(t);
  struct Case {
    Predicate pred;
    std::function<bool(int64_t)> oracle;
  };
  std::vector<Case> cases;
  cases.push_back({Predicate::CmpI32("i32", CmpOp::kLt, 5),
                   [&](int64_t i) { return t.column(0).I32Data()[i] < 5; }});
  cases.push_back({Predicate::CmpI64("i64", CmpOp::kNe, 10),
                   [&](int64_t i) { return t.column(1).I64Data()[i] != 10; }});
  cases.push_back({Predicate::CmpF64("f64", CmpOp::kGt, 0.0),
                   [&](int64_t i) { return t.column(2).F64Data()[i] > 0; }});
  cases.push_back(
      {Predicate::BetweenI32("date", 8100, 8200), [&](int64_t i) {
         const int32_t v = t.column(3).I32Data()[i];
         return v >= 8100 && v <= 8200;
       }});
  cases.push_back({Predicate::InI32("i32", {1, 3, 5, 7}), [&](int64_t i) {
                     const int32_t v = t.column(0).I32Data()[i];
                     return v == 1 || v == 3 || v == 5 || v == 7;
                   }});
  cases.push_back({Predicate::StrEq("str", "SHIP"), [&](int64_t i) {
                     return t.column(4).StringAt(i) == "SHIP";
                   }});
  cases.push_back({Predicate::StrNe("str", "SHIP"), [&](int64_t i) {
                     return t.column(4).StringAt(i) != "SHIP";
                   }});
  cases.push_back({Predicate::Like("str", "%AI%"), [&](int64_t i) {
                     return t.column(4).StringAt(i).find("AI") !=
                            std::string_view::npos;
                   }});
  cases.push_back({Predicate::NotLike("str", "R%"), [&](int64_t i) {
                     return t.column(4).StringAt(i).substr(0, 1) != "R";
                   }});

  for (auto& c : cases) {
    const SelVec sel = Filter(src, {std::move(c.pred)}, nullptr);
    SelVec expected;
    for (int64_t i = 0; i < t.num_rows(); ++i) {
      if (c.oracle(i)) expected.push_back(static_cast<int32_t>(i));
    }
    EXPECT_EQ(sel, expected);
  }
}

TEST_P(ExecPropertyTest, FilterColCmpColMatchesOracle) {
  const Table t = RandomTable(2000, GetParam() + 200);
  const ColumnSource src(t);
  const SelVec sel =
      FilterColCmpCol(src, "i32", CmpOp::kLt, "date", nullptr);
  SelVec expected;
  for (int64_t i = 0; i < t.num_rows(); ++i) {
    if (t.column(0).I32Data()[i] < t.column(3).I32Data()[i]) {
      expected.push_back(static_cast<int32_t>(i));
    }
  }
  EXPECT_EQ(sel, expected);

  // Refinement keeps only rows present in the base selection.
  SelVec base;
  for (int32_t i = 0; i < 2000; i += 3) base.push_back(i);
  const SelVec refined =
      FilterColCmpCol(src, "i32", CmpOp::kLt, "date", nullptr, &base);
  for (const int32_t r : refined) EXPECT_EQ(r % 3, 0);
}

TEST(ExecTest, UnionSelDeduplicatesAndSorts) {
  SelVec a = {1, 5, 9};
  SelVec b = {2, 5, 8};
  SelVec c = {9};
  const SelVec u = UnionSel({&a, &b, &c}, nullptr);
  EXPECT_EQ(u, (SelVec{1, 2, 5, 8, 9}));
}

TEST(ExecTest, GatherWithDefaultFillsMissing) {
  Column src(DataType::kFloat64);
  src.AppendFloat64(10);
  src.AppendFloat64(20);
  const std::vector<int32_t> idx = {1, -1, 0};
  QueryStats stats;
  auto out = GatherWithDefault(src, idx, -1.0, &stats);
  EXPECT_DOUBLE_EQ(out->F64Data()[0], 20);
  EXPECT_DOUBLE_EQ(out->F64Data()[1], -1);
  EXPECT_DOUBLE_EQ(out->F64Data()[2], 10);
}

TEST_P(ExecPropertyTest, HashJoinMatchesNestedLoop) {
  const Table build = RandomTable(300, GetParam() + 300);
  const Table probe = RandomTable(500, GetParam() + 301);
  std::vector<const Column*> bk = {&build.column("i64")};
  std::vector<const Column*> pk = {&probe.column("i64")};

  const JoinResult inner = HashJoin(bk, pk, JoinKind::kInner, nullptr);
  std::multiset<std::pair<int32_t, int32_t>> got, want;
  for (size_t i = 0; i < inner.build_idx.size(); ++i) {
    got.insert({inner.build_idx[i], inner.probe_idx[i]});
  }
  for (int32_t p = 0; p < probe.num_rows(); ++p) {
    for (int32_t b = 0; b < build.num_rows(); ++b) {
      if (build.column(1).I64Data()[b] == probe.column(1).I64Data()[p]) {
        want.insert({b, p});
      }
    }
  }
  EXPECT_EQ(got, want);

  // Semi and anti partition the probe rows.
  const JoinResult semi = HashJoin(bk, pk, JoinKind::kSemi, nullptr);
  const JoinResult anti = HashJoin(bk, pk, JoinKind::kAnti, nullptr);
  EXPECT_EQ(semi.probe_idx.size() + anti.probe_idx.size(),
            static_cast<size_t>(probe.num_rows()));
  for (const int32_t p : semi.probe_idx) {
    bool any = false;
    for (int32_t b = 0; b < build.num_rows(); ++b) {
      any |= build.column(1).I64Data()[b] == probe.column(1).I64Data()[p];
    }
    EXPECT_TRUE(any);
  }

  // Left outer covers every probe row exactly max(1, #matches) times.
  const JoinResult outer = HashJoin(bk, pk, JoinKind::kLeftOuter, nullptr);
  std::map<int32_t, int> probe_count;
  for (const int32_t p : outer.probe_idx) ++probe_count[p];
  for (int32_t p = 0; p < probe.num_rows(); ++p) {
    int matches = 0;
    for (int32_t b = 0; b < build.num_rows(); ++b) {
      matches += build.column(1).I64Data()[b] == probe.column(1).I64Data()[p];
    }
    EXPECT_EQ(probe_count[p], std::max(1, matches));
  }
}

TEST_P(ExecPropertyTest, MultiKeyJoinComparesAllKeys) {
  const Table build = RandomTable(400, GetParam() + 400);
  const Table probe = RandomTable(400, GetParam() + 401);
  const JoinResult jr =
      HashJoin({&build.column("i32"), &build.column("str")},
               {&probe.column("i32"), &probe.column("str")},
               JoinKind::kInner, nullptr);
  size_t want = 0;
  for (int32_t p = 0; p < probe.num_rows(); ++p) {
    for (int32_t b = 0; b < build.num_rows(); ++b) {
      want += build.column(0).I32Data()[b] == probe.column(0).I32Data()[p] &&
              build.column(4).I32Data()[b] == probe.column(4).I32Data()[p];
    }
  }
  EXPECT_EQ(jr.probe_idx.size(), want);
  for (size_t i = 0; i < jr.probe_idx.size(); ++i) {
    EXPECT_EQ(build.column(0).I32Data()[jr.build_idx[i]],
              probe.column(0).I32Data()[jr.probe_idx[i]]);
  }
}

TEST_P(ExecPropertyTest, HashAggregateMatchesMapOracle) {
  const Table t = RandomTable(3000, GetParam() + 500);
  Relation agg = HashAggregate(ColumnSource(t), {"i32"},
                               {{AggFn::kSum, "f64", "sum"},
                                {AggFn::kMin, "f64", "min"},
                                {AggFn::kMax, "f64", "max"},
                                {AggFn::kCountStar, "", "count"},
                                {AggFn::kAvg, "f64", "avg"},
                                {AggFn::kSumI64, "i64", "isum"}},
                               nullptr);

  struct Acc {
    double sum = 0, mn = 1e18, mx = -1e18;
    int64_t n = 0, isum = 0;
  };
  std::map<int32_t, Acc> oracle;
  for (int64_t i = 0; i < t.num_rows(); ++i) {
    Acc& a = oracle[t.column(0).I32Data()[i]];
    const double v = t.column(2).F64Data()[i];
    a.sum += v;
    a.mn = std::min(a.mn, v);
    a.mx = std::max(a.mx, v);
    ++a.n;
    a.isum += t.column(1).I64Data()[i];
  }
  ASSERT_EQ(agg.num_rows(), static_cast<int64_t>(oracle.size()));
  for (int64_t g = 0; g < agg.num_rows(); ++g) {
    const Acc& a = oracle.at(agg.column("i32").I32Data()[g]);
    EXPECT_NEAR(agg.column("sum").F64Data()[g], a.sum, 1e-9);
    EXPECT_DOUBLE_EQ(agg.column("min").F64Data()[g], a.mn);
    EXPECT_DOUBLE_EQ(agg.column("max").F64Data()[g], a.mx);
    EXPECT_EQ(agg.column("count").I64Data()[g], a.n);
    EXPECT_NEAR(agg.column("avg").F64Data()[g], a.sum / a.n, 1e-9);
    EXPECT_EQ(agg.column("isum").I64Data()[g], a.isum);
  }
}

TEST(ExecTest, GlobalAggregateOverEmptyInput) {
  const Table t = RandomTable(0, 1);
  Relation agg = HashAggregate(ColumnSource(t), {},
                               {{AggFn::kSum, "f64", "sum"},
                                {AggFn::kCountStar, "", "count"}},
                               nullptr);
  ASSERT_EQ(agg.num_rows(), 1);
  EXPECT_DOUBLE_EQ(agg.column("sum").F64Data()[0], 0);
  EXPECT_EQ(agg.column("count").I64Data()[0], 0);
}

TEST_P(ExecPropertyTest, SortPermOrdersAndIsStable) {
  const Table t = RandomTable(1000, GetParam() + 600);
  const ColumnSource src(t);
  const SelVec perm =
      SortPerm(src, {{"i32", true}, {"f64", false}}, nullptr);
  ASSERT_EQ(perm.size(), 1000u);
  for (size_t i = 1; i < perm.size(); ++i) {
    const int32_t a32 = t.column(0).I32Data()[perm[i - 1]];
    const int32_t b32 = t.column(0).I32Data()[perm[i]];
    ASSERT_LE(a32, b32);
    if (a32 == b32) {
      const double af = t.column(2).F64Data()[perm[i - 1]];
      const double bf = t.column(2).F64Data()[perm[i]];
      ASSERT_GE(af, bf);
      if (af == bf) {
        ASSERT_LT(perm[i - 1], perm[i]);  // stable tiebreak
      }
    }
  }

  // Top-N agrees with the prefix of the full sort.
  const SelVec top =
      SortPerm(src, {{"i32", true}, {"f64", false}}, nullptr, 10);
  ASSERT_EQ(top.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(top[i], perm[i]);
}

TEST(ExecTest, SortOnStringsIsLexicographic) {
  Schema schema({{"s", DataType::kString}});
  Table t("t", schema);
  // Insert out of lexicographic order so codes != order.
  for (const char* v : {"pear", "apple", "zebra", "mango"}) {
    t.column(0).AppendString(v);
  }
  t.FinishLoad();
  const SelVec perm = SortPerm(ColumnSource(t), {{"s", true}}, nullptr);
  EXPECT_EQ(t.column(0).StringAt(perm[0]), "apple");
  EXPECT_EQ(t.column(0).StringAt(perm[3]), "zebra");
}

TEST(ExecTest, ExpressionKernels) {
  Column a(DataType::kFloat64), b(DataType::kFloat64);
  for (int i = 1; i <= 4; ++i) {
    a.AppendFloat64(i);
    b.AppendFloat64(i * 10);
  }
  EXPECT_DOUBLE_EQ(MulF64(a, b, nullptr)->F64Data()[2], 90);
  EXPECT_DOUBLE_EQ(AddF64(a, b, nullptr)->F64Data()[0], 11);
  EXPECT_DOUBLE_EQ(SubF64(b, a, nullptr)->F64Data()[3], 36);
  EXPECT_DOUBLE_EQ(ConstMinusF64(1.0, a, nullptr)->F64Data()[1], -1);
  EXPECT_DOUBLE_EQ(ConstPlusF64(1.0, a, nullptr)->F64Data()[1], 3);
  EXPECT_DOUBLE_EQ(MulConstF64(a, 0.5, nullptr)->F64Data()[3], 2);
  EXPECT_DOUBLE_EQ(DivF64(b, a, nullptr)->F64Data()[1], 10);

  Column zero(DataType::kFloat64);
  zero.AppendFloat64(0);
  Column one(DataType::kFloat64);
  one.AppendFloat64(1);
  EXPECT_DOUBLE_EQ(DivF64(one, zero, nullptr)->F64Data()[0], 0);

  Column i32(DataType::kInt32);
  i32.AppendInt32(-3);
  EXPECT_DOUBLE_EQ(CastF64(i32, nullptr)->F64Data()[0], -3.0);

  Column dates(DataType::kDate);
  dates.AppendInt32(wimpi::ParseDate("1995-06-17"));
  EXPECT_EQ(ExtractYear(dates, nullptr)->I32Data()[0], 1995);

  const std::vector<uint8_t> mask = {1, 0, 1, 0};
  auto masked = MaskedF64(a, mask, nullptr);
  EXPECT_DOUBLE_EQ(masked->F64Data()[0], 1);
  EXPECT_DOUBLE_EQ(masked->F64Data()[1], 0);
}

TEST(ExecTest, CountersScaleLinearly) {
  QueryStats s;
  OpStats op;
  op.op = "x";
  op.compute_ops = 10;
  op.seq_bytes = 100;
  op.rand_count = 5;
  s.Add(op);
  s.TrackAlloc(64);
  s.TouchBaseColumn("t.c", 1000);
  s.Scale(10);
  EXPECT_DOUBLE_EQ(s.TotalComputeOps(), 100);
  EXPECT_DOUBLE_EQ(s.TotalSeqBytes(), 1000);
  EXPECT_DOUBLE_EQ(s.TotalRandCount(), 50);
  EXPECT_DOUBLE_EQ(s.peak_intermediate_bytes, 640);
  EXPECT_DOUBLE_EQ(s.BaseTouchedBytes(), 10000);
}

}  // namespace
}  // namespace wimpi::exec
