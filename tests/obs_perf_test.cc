// Hardware perf counters must be an observer, not a participant. The
// acceptance bar from the issue: with perf unavailable (forced here via
// WIMPI_PERF_DISABLE=1 — the same path taken under high perf_event_paranoid
// or a PMU-less container) queries return bit-identical results and trees
// report "counters unavailable"; with perf available the same queries are
// still bit-identical and IPC/LLC metrics appear where the host supports
// the events. Both paths run in this binary.
#include <cstdlib>
#include <string>

#include "engine/database.h"
#include "engine/executor.h"
#include "gtest/gtest.h"
#include "obs/perf_counters.h"
#include "obs/profiler.h"
#include "obs/residual.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace wimpi {
namespace {

const engine::Database& TestDb() {
  static engine::Database* db = nullptr;
  if (db == nullptr) {
    tpch::GenOptions opts;
    opts.scale_factor = 0.01;
    db = new engine::Database(tpch::GenerateDatabase(opts));
  }
  return *db;
}

// Exact (bit-level) relation comparison — the perf-on run must not differ
// from the plain run in a single bit.
void ExpectRelationsIdentical(const exec::Relation& a,
                              const exec::Relation& b) {
  ASSERT_EQ(a.num_columns(), b.num_columns());
  ASSERT_EQ(a.num_rows(), b.num_rows());
  const int64_t n = a.num_rows();
  for (int c = 0; c < a.num_columns(); ++c) {
    ASSERT_EQ(a.name(c), b.name(c));
    const auto& ca = a.column(c);
    const auto& cb = b.column(c);
    ASSERT_EQ(ca.type(), cb.type()) << "column " << a.name(c);
    for (int64_t r = 0; r < n; ++r) {
      switch (ca.type()) {
        case storage::DataType::kInt64:
          ASSERT_EQ(ca.I64Data()[r], cb.I64Data()[r])
              << a.name(c) << " row " << r;
          break;
        case storage::DataType::kFloat64:
          ASSERT_EQ(ca.F64Data()[r], cb.F64Data()[r])
              << a.name(c) << " row " << r;
          break;
        case storage::DataType::kString:
          ASSERT_EQ(ca.StringAt(r), cb.StringAt(r))
              << a.name(c) << " row " << r;
          break;
        default:
          ASSERT_EQ(ca.I32Data()[r], cb.I32Data()[r])
              << a.name(c) << " row " << r;
          break;
      }
    }
  }
}

// Scoped WIMPI_PERF_DISABLE so tests can force the unavailable path
// without leaking into other tests in this binary.
class ScopedPerfDisable {
 public:
  ScopedPerfDisable() { setenv("WIMPI_PERF_DISABLE", "1", /*overwrite=*/1); }
  ~ScopedPerfDisable() { unsetenv("WIMPI_PERF_DISABLE"); }
};

obs::ProfileOptions PerfProfiling() {
  obs::ProfileOptions popts;
  popts.operator_profile = true;
  popts.perf_counters = true;
  return popts;
}

// ---------- PerfCounts arithmetic (host-independent) ----------

TEST(PerfCounts, DefaultsUnavailable) {
  obs::PerfCounts c;
  EXPECT_FALSE(c.AnyAvailable());
  for (int i = 0; i < obs::PerfCounts::kNumEvents; ++i) {
    EXPECT_FALSE(c.Has(static_cast<obs::PerfEvent>(i)));
  }
  EXPECT_LT(c.Ipc(), 0);
  EXPECT_LT(c.LlcMissRate(), 0);
  EXPECT_LT(c.DramBytes(), 0);
  EXPECT_TRUE(c.Summary().empty());
}

TEST(PerfCounts, DerivedMetrics) {
  obs::PerfCounts c;
  c.Set(obs::PerfEvent::kCycles, 1000);
  c.Set(obs::PerfEvent::kInstructions, 1850);
  c.Set(obs::PerfEvent::kLlcLoads, 200);
  c.Set(obs::PerfEvent::kLlcMisses, 25);
  c.Set(obs::PerfEvent::kTaskClockNs, 500);
  EXPECT_TRUE(c.AnyAvailable());
  EXPECT_DOUBLE_EQ(c.Ipc(), 1.85);
  EXPECT_DOUBLE_EQ(c.LlcMissRate(), 0.125);
  EXPECT_DOUBLE_EQ(c.DramBytes(), 25 * 64.0);
  EXPECT_DOUBLE_EQ(c.GhzEffective(), 2.0);
  const std::string s = c.Summary();
  EXPECT_NE(s.find("IPC"), std::string::npos);
  EXPECT_NE(s.find("LLC-miss"), std::string::npos);
}

TEST(PerfCounts, DeltaAndAccumulateKeepUnavailabilitySticky) {
  obs::PerfCounts start, end;
  start.Set(obs::PerfEvent::kInstructions, 100);
  end.Set(obs::PerfEvent::kInstructions, 175);
  end.Set(obs::PerfEvent::kCycles, 50);  // missing at start

  const obs::PerfCounts d = end.Delta(start);
  EXPECT_EQ(d.Get(obs::PerfEvent::kInstructions), 75);
  EXPECT_FALSE(d.Has(obs::PerfEvent::kCycles));
  EXPECT_FALSE(d.Has(obs::PerfEvent::kLlcLoads));

  obs::PerfCounts acc = d;
  acc.Accumulate(d);
  EXPECT_EQ(acc.Get(obs::PerfEvent::kInstructions), 150);
  EXPECT_FALSE(acc.Has(obs::PerfEvent::kCycles));
}

TEST(PerfCounts, EventNamesAreStable) {
  EXPECT_STREQ(obs::PerfEventName(obs::PerfEvent::kCycles), "cycles");
  EXPECT_STREQ(obs::PerfEventName(obs::PerfEvent::kLlcMisses),
               "llc_misses");
  EXPECT_STREQ(obs::PerfEventName(obs::PerfEvent::kTaskClockNs),
               "task_clock_ns");
}

// ---------- forced-unavailable path ----------

TEST(PerfDisabled, OpenFailsWithReason) {
  ScopedPerfDisable off;
  EXPECT_FALSE(obs::PerfCounters::Available());
  EXPECT_FALSE(obs::PerfCounters::AvailabilityNote().empty());
  obs::PerfCounters pc;
  EXPECT_FALSE(pc.Open());
  EXPECT_FALSE(pc.open());
  EXPECT_EQ(pc.num_events_open(), 0);
  EXPECT_FALSE(pc.error().empty());
  EXPECT_FALSE(pc.Read().AnyAvailable());
}

TEST(PerfDisabled, ProfiledRunBitIdenticalAndTreeSaysUnavailable) {
  const engine::Database& db = TestDb();
  for (const int q : {1, 6, 18}) {
    SCOPED_TRACE("Q" + std::to_string(q));
    engine::Executor ex;
    ex.set_num_threads(1);

    const exec::Relation plain =
        ex.Run([&](exec::QueryStats* s) { return tpch::RunQuery(q, db, s); });

    ScopedPerfDisable off;
    obs::QueryProfile profile;
    exec::QueryStats stats;
    const exec::Relation with_perf = ex.RunProfiled(
        [&](exec::QueryStats* s) { return tpch::RunQuery(q, db, s); },
        PerfProfiling(), &profile, &stats, "Q" + std::to_string(q));

    ExpectRelationsIdentical(with_perf, plain);
    EXPECT_FALSE(profile.perf_valid);
    EXPECT_NE(profile.perf_note.find("counters unavailable"),
              std::string::npos);
    EXPECT_NE(profile.FormatTree().find("counters unavailable"),
              std::string::npos);

    const obs::CounterResidualReport report = obs::CounterResiduals(profile);
    EXPECT_FALSE(report.available);
    EXPECT_NE(report.Format().find("counters unavailable"),
              std::string::npos);
  }
}

// ---------- live path (degrades per host capability) ----------

TEST(PerfLive, ProfiledRunBitIdenticalAndCountersReportedWhenCountable) {
  const engine::Database& db = TestDb();
  engine::Executor ex;
  ex.set_num_threads(1);

  const exec::Relation plain =
      ex.Run([&](exec::QueryStats* s) { return tpch::RunQuery(6, db, s); });

  obs::QueryProfile profile;
  exec::QueryStats stats;
  const exec::Relation with_perf = ex.RunProfiled(
      [&](exec::QueryStats* s) { return tpch::RunQuery(6, db, s); },
      PerfProfiling(), &profile, &stats, "Q6");

  // Bit-identical regardless of what the host can count.
  ExpectRelationsIdentical(with_perf, plain);

  if (!obs::PerfCounters::Available()) {
    // PMU-less host (common in CI containers): must have degraded with a
    // reason, same as the forced path.
    EXPECT_FALSE(profile.perf_valid);
    EXPECT_NE(profile.perf_note.find("counters unavailable"),
              std::string::npos);
    return;
  }

  ASSERT_TRUE(profile.perf_valid);
  EXPECT_TRUE(profile.perf_note.empty());
  EXPECT_TRUE(profile.perf.AnyAvailable());
  // Whatever subset is countable must have actually counted.
  for (int i = 0; i < obs::PerfCounts::kNumEvents; ++i) {
    const auto e = static_cast<obs::PerfEvent>(i);
    if (profile.perf.Has(e)) EXPECT_GE(profile.perf.Get(e), 0);
  }
  if (profile.perf.Has(obs::PerfEvent::kTaskClockNs)) {
    EXPECT_GT(profile.perf.Get(obs::PerfEvent::kTaskClockNs), 0);
  }
  if (profile.perf.Has(obs::PerfEvent::kCycles) &&
      profile.perf.Has(obs::PerfEvent::kInstructions)) {
    EXPECT_GT(profile.perf.Ipc(), 0);
    // The tree footer renders the summary (IPC included).
    EXPECT_NE(profile.FormatTree().find("IPC"), std::string::npos);
  }
  EXPECT_NE(profile.FormatTree().find("perf:"), std::string::npos);

  const obs::CounterResidualReport report = obs::CounterResiduals(profile);
  EXPECT_TRUE(report.available);
  EXPECT_GT(report.total_compute_ops, 0);
  EXPECT_GT(report.total_seq_bytes, 0);
  EXPECT_FALSE(report.entries.empty());
  EXPECT_FALSE(report.Format().empty());
}

TEST(PerfLive, NotRequestedMeansNoNoteAndNoCounters) {
  const engine::Database& db = TestDb();
  engine::Executor ex;
  ex.set_num_threads(1);
  obs::ProfileOptions popts;  // perf_counters off
  popts.operator_profile = true;
  obs::QueryProfile profile;
  ex.RunProfiled(
      [&](exec::QueryStats* s) { return tpch::RunQuery(6, db, s); }, popts,
      &profile, nullptr, "Q6");
  EXPECT_FALSE(profile.perf_valid);
  EXPECT_TRUE(profile.perf_note.empty());
  EXPECT_EQ(profile.FormatTree().find("counters unavailable"),
            std::string::npos);
}

}  // namespace
}  // namespace wimpi
