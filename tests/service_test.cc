// Concurrent query service: answer identity under concurrency, admission
// control edge cases, cancellation/timeout semantics, fair-scheduler stride
// accounting, and a deterministic many-sessions stress run (exercised under
// TSan by scripts/check_tsan.sh).
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "engine/executor.h"
#include "exec/exec_options.h"
#include "exec/morsel_exec.h"
#include "gtest/gtest.h"
#include "obs/flight/flight_recorder.h"
#include "obs/flight/slow_query_log.h"
#include "obs/metrics.h"
#include "service/admission.h"
#include "service/fair_scheduler.h"
#include "service/query_service.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace wimpi {
namespace {

using service::ClientSession;
using service::QueryService;
using service::QuerySpec;
using service::QueryTicket;
using service::ServiceOptions;

const engine::Database& TestDb() {
  static engine::Database* db = nullptr;
  if (db == nullptr) {
    tpch::GenOptions opts;
    opts.scale_factor = 0.01;
    db = new engine::Database(tpch::GenerateDatabase(opts));
  }
  return *db;
}

// Exact (bit-level) relation comparison; the service guarantees answers
// identical to isolated execution, not merely numerically equal ones.
void ExpectRelationsIdentical(const exec::Relation& a,
                              const exec::Relation& b) {
  ASSERT_EQ(a.num_columns(), b.num_columns());
  ASSERT_EQ(a.num_rows(), b.num_rows());
  const int64_t n = a.num_rows();
  for (int c = 0; c < a.num_columns(); ++c) {
    ASSERT_EQ(a.name(c), b.name(c));
    const auto& ca = a.column(c);
    const auto& cb = b.column(c);
    ASSERT_EQ(ca.type(), cb.type()) << "column " << a.name(c);
    for (int64_t r = 0; r < n; ++r) {
      switch (ca.type()) {
        case storage::DataType::kInt64:
          ASSERT_EQ(ca.I64Data()[r], cb.I64Data()[r])
              << a.name(c) << " row " << r;
          break;
        case storage::DataType::kFloat64:
          ASSERT_EQ(ca.F64Data()[r], cb.F64Data()[r])
              << a.name(c) << " row " << r;
          break;
        case storage::DataType::kString:
          ASSERT_EQ(ca.StringAt(r), cb.StringAt(r))
              << a.name(c) << " row " << r;
          break;
        default:
          ASSERT_EQ(ca.I32Data()[r], cb.I32Data()[r])
              << a.name(c) << " row " << r;
          break;
      }
    }
  }
}

QuerySpec TpchSpec(int q, const engine::Database& db) {
  QuerySpec spec;
  spec.label = "q" + std::to_string(q);
  spec.plan = [q, &db](exec::QueryStats* stats) {
    return tpch::RunQuery(q, db, stats);
  };
  return spec;
}

// All 22 TPC-H queries submitted at once: every answer the service hands
// back must be bit-identical to the same plan run in isolation, no matter
// how the fair scheduler interleaved the queries' morsels.
TEST(QueryServiceTest, AnswersMatchIsolatedExecutionForAllQueries) {
  const engine::Database& db = TestDb();

  std::vector<exec::Relation> isolated;
  for (int q = 1; q <= 22; ++q) {
    engine::Executor ex;
    ex.set_num_threads(4);
    ex.set_morsel_rows(4096);  // real fan-out even at SF 0.01
    isolated.push_back(
        ex.Run([&](exec::QueryStats* s) { return tpch::RunQuery(q, db, s); }));
  }

  ServiceOptions opts;
  opts.max_active = 3;
  opts.query_threads = 4;
  opts.morsel_rows = 4096;
  QueryService svc(opts);
  std::vector<QueryTicket> tickets;
  for (int q = 1; q <= 22; ++q) tickets.push_back(svc.Submit(TpchSpec(q, db)));
  for (int q = 1; q <= 22; ++q) {
    SCOPED_TRACE("q" + std::to_string(q));
    const Status status = tickets[q - 1].Wait();
    ASSERT_TRUE(status.ok()) << status.ToString();
    const exec::Relation got = tickets[q - 1].TakeResult();
    ExpectRelationsIdentical(got, isolated[q - 1]);
  }
}

TEST(QueryServiceTest, QueryOverWholeBudgetRejectedImmediately) {
  ServiceOptions opts;
  opts.budget_bytes = 1 << 20;
  QueryService svc(opts);
  QuerySpec spec;
  spec.label = "oversized";
  spec.plan = [](exec::QueryStats*) { return exec::Relation(); };
  spec.estimated_bytes = (1 << 20) + 1;
  QueryTicket t = svc.Submit(std::move(spec));
  // Not queued forever: the ticket is already finalized.
  EXPECT_TRUE(t.Done());
  EXPECT_EQ(t.Wait().code(), StatusCode::kResourceExhausted);
}

// A plan that blocks until released, so tests can pin the service's only
// driver and exercise the queue behind it.
struct Latch {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  bool entered = false;

  void WaitEntered() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered; });
  }
  void Open() {
    std::lock_guard<std::mutex> lock(mu);
    open = true;
    cv.notify_all();
  }
  QuerySpec BlockingSpec() {
    QuerySpec spec;
    spec.label = "blocking";
    spec.plan = [this](exec::QueryStats*) {
      std::unique_lock<std::mutex> lock(mu);
      entered = true;
      cv.notify_all();
      cv.wait(lock, [&] { return open; });
      return exec::Relation();
    };
    return spec;
  }
};

TEST(QueryServiceTest, QueueOverflowRejected) {
  ServiceOptions opts;
  opts.max_active = 1;
  opts.max_queue = 1;
  QueryService svc(opts);
  Latch latch;
  QueryTicket running = svc.Submit(latch.BlockingSpec());
  latch.WaitEntered();

  QuerySpec q2;
  q2.plan = [](exec::QueryStats*) { return exec::Relation(); };
  QueryTicket queued = svc.Submit(std::move(q2));
  EXPECT_FALSE(queued.Done());

  QuerySpec q3;
  q3.plan = [](exec::QueryStats*) { return exec::Relation(); };
  QueryTicket overflow = svc.Submit(std::move(q3));
  EXPECT_EQ(overflow.Wait().code(), StatusCode::kResourceExhausted);

  latch.Open();
  EXPECT_TRUE(running.Wait().ok());
  EXPECT_TRUE(queued.Wait().ok());
}

TEST(QueryServiceTest, CancelWhileQueued) {
  ServiceOptions opts;
  opts.max_active = 1;
  QueryService svc(opts);
  Latch latch;
  QueryTicket running = svc.Submit(latch.BlockingSpec());
  latch.WaitEntered();

  QuerySpec q;
  q.plan = [](exec::QueryStats*) { return exec::Relation(); };
  QueryTicket queued = svc.Submit(std::move(q));
  EXPECT_FALSE(queued.Done());
  queued.Cancel();
  EXPECT_EQ(queued.Wait().code(), StatusCode::kCancelled);

  latch.Open();
  EXPECT_TRUE(running.Wait().ok());
}

// A morsel-parallel plan whose total work is far longer than any test
// budget: cancellation (or the deadline) must stop it early by skipping
// the remaining dispatches.
QuerySpec SlowMorselSpec(std::atomic<bool>* started) {
  QuerySpec spec;
  spec.label = "slow";
  spec.plan = [started](exec::QueryStats*) {
    const int64_t rows = 64 * 2048;  // 2048 morsels at morsel_rows=64
    for (int iter = 0; iter < 1000; ++iter) {
      const auto* cancel = exec::CurrentExecOptions().cancellation;
      if (cancel != nullptr && cancel->cancelled()) break;
      exec::RunMorsels(rows, exec::PlannedThreads(rows),
                       [&](const parallel::Morsel&) {
                         started->store(true, std::memory_order_relaxed);
                         std::this_thread::sleep_for(
                             std::chrono::milliseconds(1));
                       });
    }
    return exec::Relation();
  };
  return spec;
}

TEST(QueryServiceTest, CancelMidPipelineReturnsPromptly) {
  ServiceOptions opts;
  opts.max_active = 1;
  opts.query_threads = 4;
  opts.morsel_rows = 64;
  QueryService svc(opts);
  std::atomic<bool> started{false};
  QueryTicket t = svc.Submit(SlowMorselSpec(&started));
  while (!started.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  t.Cancel();
  // Total work is ~2000 seconds of sleeps; a prompt cancel finishes the
  // Wait in test time, and the result is discarded.
  EXPECT_EQ(t.Wait().code(), StatusCode::kCancelled);
}

TEST(QueryServiceTest, TimeoutFiresDeadlineExceeded) {
  ServiceOptions opts;
  opts.max_active = 1;
  opts.query_threads = 4;
  opts.morsel_rows = 64;
  QueryService svc(opts);
  std::atomic<bool> started{false};
  QuerySpec spec = SlowMorselSpec(&started);
  spec.timeout_us = 50 * 1000;
  QueryTicket t = svc.Submit(std::move(spec));
  EXPECT_EQ(t.Wait().code(), StatusCode::kDeadlineExceeded);
}

// Stride accounting: after running pipelines on lanes of different
// priority, each lane's pass advanced by tasks * (base / priority), so the
// high-priority lane's pass trails the low-priority one for the same work.
TEST(FairPipelineSchedulerTest, StrideAccountsPassByPriority) {
  parallel::ThreadPool pool(2);
  service::FairPipelineScheduler sched(&pool);
  parallel::CancellationToken c1, c2;
  const int lane1 = sched.OpenLane(1.0, &c1);
  const int lane2 = sched.OpenLane(2.0, &c2);

  std::atomic<int64_t> count{0};
  const std::function<void(const parallel::Morsel&)> body =
      [&](const parallel::Morsel&) {
        count.fetch_add(1, std::memory_order_relaxed);
      };
  parallel::PipelineSpec spec;
  spec.total_rows = 8 * 64;
  spec.morsel_rows = 64;  // 8 morsels
  spec.max_threads = 2;
  spec.body = &body;
  sched.RunPipeline(lane1, spec);
  sched.RunPipeline(lane2, spec);
  EXPECT_EQ(count.load(), 16);

  const auto passes = sched.LanePassesForTest();
  EXPECT_DOUBLE_EQ(passes.at(lane1), 8 * service::kStrideBase);
  EXPECT_DOUBLE_EQ(passes.at(lane2), 8 * service::kStrideBase / 2.0);

  service::LaneUsage usage;
  sched.CloseLane(lane1, &usage);
  EXPECT_EQ(usage.pipelines, 1);
  EXPECT_EQ(usage.tasks, 8);
  EXPECT_EQ(usage.rows, 8 * 64);
  sched.CloseLane(lane2);
}

TEST(AdmissionControllerTest, ReserveReleaseAndFitsBudget) {
  service::AdmissionController ac({1000});
  EXPECT_FALSE(ac.FitsBudget(1001));
  EXPECT_TRUE(ac.FitsBudget(1000));
  EXPECT_TRUE(ac.TryReserve(600));
  EXPECT_FALSE(ac.TryReserve(600));
  EXPECT_TRUE(ac.TryReserve(400));
  ac.Release(600);
  EXPECT_TRUE(ac.TryReserve(500));
  ac.Release(400);
  ac.Release(500);
  EXPECT_EQ(ac.reserved_bytes(), 0);
  EXPECT_LE(ac.peak_reserved_bytes(), 1000);
}

// Deterministic many-sessions stress: hundreds of closed-loop sessions,
// mixed priorities, a budget small enough to force queueing, a sprinkle of
// rejects and cancels. Invariants: every ticket reaches a terminal status,
// the terminal counts add up, all reservations are returned, and the peak
// reservation never exceeded the budget.
TEST(QueryServiceTest, ManySessionsStress) {
  constexpr int kSessions = 96;
  constexpr int kQueriesPerSession = 4;
  constexpr int64_t kBudget = 1 << 20;

  ServiceOptions opts;
  opts.budget_bytes = kBudget;
  opts.max_active = 4;
  opts.max_queue = kSessions * kQueriesPerSession;
  opts.query_threads = 2;
  opts.morsel_rows = 256;
  QueryService svc(opts);

  std::atomic<int64_t> total_sum{0};
  auto make_spec = [&](int session, int i) {
    QuerySpec spec;
    spec.label = "s" + std::to_string(session) + "." + std::to_string(i);
    spec.priority = 1.0 + (session % 4);
    // Most queries fit; every 17th can never fit and must be rejected.
    spec.estimated_bytes =
        ((session * kQueriesPerSession + i) % 17 == 0) ? kBudget + 1
                                                       : kBudget / 8;
    const int64_t rows = 256 * 8;  // 8 morsels
    spec.plan = [&total_sum, rows](exec::QueryStats*) {
      std::atomic<int64_t> local{0};
      exec::RunMorsels(rows, exec::PlannedThreads(rows),
                       [&](const parallel::Morsel& m) {
                         local.fetch_add(m.rows(), std::memory_order_relaxed);
                       });
      total_sum.fetch_add(local.load(), std::memory_order_relaxed);
      return exec::Relation();
    };
    return spec;
  };

  std::vector<std::vector<QueryTicket>> tickets(kSessions);
  {
    // 8 submitter threads multiplex the sessions (sessions are objects,
    // not threads).
    std::vector<std::thread> submitters;
    std::mutex tickets_mu;
    for (int s = 0; s < 8; ++s) {
      submitters.emplace_back([&, s] {
        for (int session = s; session < kSessions; session += 8) {
          ClientSession client(&svc, "sess" + std::to_string(session));
          std::vector<QueryTicket> mine;
          for (int i = 0; i < kQueriesPerSession; ++i) {
            mine.push_back(client.Submit(make_spec(session, i)));
          }
          std::lock_guard<std::mutex> lock(tickets_mu);
          tickets[session] = std::move(mine);
        }
      });
    }
    for (auto& t : submitters) t.join();
  }

  int ok = 0, rejected = 0, other = 0;
  for (auto& session_tickets : tickets) {
    ASSERT_EQ(session_tickets.size(), size_t{kQueriesPerSession});
    for (auto& t : session_tickets) {
      const Status status = t.Wait();
      if (status.ok()) {
        ++ok;
      } else if (status.code() == StatusCode::kResourceExhausted) {
        ++rejected;
      } else {
        ++other;
      }
    }
  }
  const int total = kSessions * kQueriesPerSession;
  EXPECT_EQ(ok + rejected + other, total);
  EXPECT_EQ(other, 0);
  // ceil(384 / 17) = 23 oversized submissions.
  EXPECT_EQ(rejected, (total + 16) / 17);
  EXPECT_EQ(total_sum.load(), static_cast<int64_t>(ok) * 256 * 8);
  EXPECT_EQ(svc.admission().reserved_bytes(), 0);
  EXPECT_LE(svc.admission().tracker().peak(), kBudget);
}

// Identity matrix across observability configs (ISSUE #7): the flight
// recorder off, and the recorder on with a 1us SLO whose latency trigger
// fires on every query, must not perturb a single bit of any answer.
TEST(QueryServiceTest, AnswersIdenticalAcrossFlightAndSloConfigs) {
  const engine::Database& db = TestDb();

  std::vector<exec::Relation> isolated;
  for (int q = 1; q <= 22; ++q) {
    engine::Executor ex;
    ex.set_num_threads(4);
    ex.set_morsel_rows(4096);
    isolated.push_back(
        ex.Run([&](exec::QueryStats* s) { return tpch::RunQuery(q, db, s); }));
  }

  auto& recorder = obs::flight::FlightRecorder::Global();
  const int64_t slow_before = obs::flight::SlowQueryLog::Global().total();
  for (const bool flight_on : {false, true}) {
    SCOPED_TRACE(flight_on ? "flight on + 1us SLO" : "flight off");
    recorder.set_enabled(flight_on);
    ServiceOptions opts;
    opts.max_active = 3;
    opts.query_threads = 4;
    opts.morsel_rows = 4096;
    if (flight_on) {
      opts.slo.default_objective_us = 1;  // every query misses -> triggers
      opts.flight.latency_threshold_us = 1;
    }
    QueryService svc(opts);
    std::vector<QueryTicket> tickets;
    for (int q = 1; q <= 22; ++q) {
      tickets.push_back(svc.Submit(TpchSpec(q, db)));
    }
    for (int q = 1; q <= 22; ++q) {
      SCOPED_TRACE("q" + std::to_string(q));
      const Status status = tickets[q - 1].Wait();
      ASSERT_TRUE(status.ok()) << status.ToString();
      ExpectRelationsIdentical(tickets[q - 1].TakeResult(), isolated[q - 1]);
    }
  }
  recorder.set_enabled(true);  // restore the always-on default
  // The 1us objective made every query of the second config a slow query.
  EXPECT_GE(obs::flight::SlowQueryLog::Global().total() - slow_before, 22);
}

// Per-query resource accounting (ISSUE #7): a known morsel plan yields
// exact pipeline/task/row counts and a consistent CPU-time breakdown.
TEST(QueryServiceTest, ResourceReportAccountsWork) {
  ServiceOptions opts;
  opts.max_active = 1;
  opts.query_threads = 2;
  opts.morsel_rows = 256;
  QueryService svc(opts);

  QuerySpec spec;
  spec.label = "acct";
  const int64_t rows = 256 * 8;  // 8 morsels
  spec.plan = [rows](exec::QueryStats*) {
    exec::RunMorsels(rows, exec::PlannedThreads(rows),
                     [](const parallel::Morsel&) {
                       // Burn a little CPU so the thread clock moves.
                       volatile double x = 0;
                       for (int i = 0; i < 50000; ++i) x += i;
                       (void)x;
                     });
    return exec::Relation();
  };
  QueryTicket t = svc.Submit(std::move(spec));
  ASSERT_TRUE(t.Wait().ok());

  const obs::flight::QueryResourceReport& r = t.resources();
  EXPECT_EQ(r.query_id, t.query_id());
  EXPECT_GT(r.query_id, 0u);
  EXPECT_GT(r.wall_us, 0);
  EXPECT_GE(r.wall_us, r.exec_us);
  EXPECT_EQ(r.pipelines, 1);
  EXPECT_EQ(r.tasks, 8);
  EXPECT_EQ(r.rows, rows);
  EXPECT_GT(r.cpu_us, 0);
  EXPECT_EQ(r.cpu_us, r.driver_cpu_us + r.worker_cpu_us);
  EXPECT_EQ(r.threads, 2);
}

// Queue-wait accounting for tickets that never run (ISSUE #7 satellite):
// a query cancelled while queued still records its time-in-queue, both on
// the ticket and in the service.queue_wait_us histogram.
TEST(QueryServiceTest, QueueWaitRecordedForCancelledWhileQueued) {
  auto& wait_h =
      obs::MetricsRegistry::Global().histogram("service.queue_wait_us");
  const int64_t count_before = wait_h.Count();

  ServiceOptions opts;
  opts.max_active = 1;
  QueryService svc(opts);
  Latch latch;
  QueryTicket running = svc.Submit(latch.BlockingSpec());
  latch.WaitEntered();

  QuerySpec q;
  q.plan = [](exec::QueryStats*) { return exec::Relation(); };
  QueryTicket queued = svc.Submit(std::move(q));
  EXPECT_FALSE(queued.Done());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  queued.Cancel();
  EXPECT_EQ(queued.Wait().code(), StatusCode::kCancelled);

  // The whole queued lifetime counts as queue wait.
  EXPECT_GT(queued.queue_wait_us(), 0);
  EXPECT_EQ(queued.resources().queue_wait_us, queued.resources().wall_us);
  EXPECT_GE(wait_h.Count(), count_before + 1);

  latch.Open();
  EXPECT_TRUE(running.Wait().ok());
}

// Destruction drains: queued work still completes, and submits racing the
// shutdown either run or come back kUnavailable — never hang.
TEST(QueryServiceTest, DestructorDrainsQueuedWork) {
  std::vector<QueryTicket> tickets;
  std::atomic<int> ran{0};
  {
    ServiceOptions opts;
    opts.max_active = 2;
    QueryService svc(opts);
    for (int i = 0; i < 16; ++i) {
      QuerySpec spec;
      spec.plan = [&ran](exec::QueryStats*) {
        ran.fetch_add(1, std::memory_order_relaxed);
        return exec::Relation();
      };
      tickets.push_back(svc.Submit(std::move(spec)));
    }
  }
  for (auto& t : tickets) EXPECT_TRUE(t.Wait().ok());
  EXPECT_EQ(ran.load(), 16);
}

}  // namespace
}  // namespace wimpi
