// Execution-strategy tests: the three paradigms must agree with each other
// on every query, match engine-level results where comparable, and exhibit
// the access-pattern differences the Figure 4 model depends on.
#include <cmath>

#include "engine/database.h"
#include "gtest/gtest.h"
#include "hw/cost_model.h"
#include "strategies/strategies.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace wimpi::strategies {
namespace {

const engine::Database& Db() {
  static engine::Database* db = [] {
    tpch::GenOptions opts;
    opts.scale_factor = 0.02;
    return new engine::Database(tpch::GenerateDatabase(opts));
  }();
  return *db;
}

class StrategyAgreementTest : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Sf10Subset, StrategyAgreementTest,
                         ::testing::Values(1, 3, 4, 5, 6, 13, 14, 19),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Q" + std::to_string(info.param);
                         });

TEST_P(StrategyAgreementTest, AllThreeStrategiesAgree) {
  const int q = GetParam();
  exec::QueryStats s1, s2, s3;
  const StratResult dc = RunStrategy(q, Strategy::kDataCentric, Db(), &s1);
  const StratResult hy = RunStrategy(q, Strategy::kHybrid, Db(), &s2);
  const StratResult aa = RunStrategy(q, Strategy::kAccessAware, Db(), &s3);
  ASSERT_EQ(dc.size(), hy.size());
  ASSERT_EQ(dc.size(), aa.size());
  for (size_t i = 0; i < dc.size(); ++i) {
    EXPECT_EQ(dc[i].first, hy[i].first);
    EXPECT_EQ(dc[i].first, aa[i].first);
    EXPECT_NEAR(dc[i].second, hy[i].second, 1e-6 * (1 + std::fabs(dc[i].second)));
    EXPECT_NEAR(dc[i].second, aa[i].second, 1e-6 * (1 + std::fabs(dc[i].second)));
  }
  EXPECT_GT(s1.TotalComputeOps(), 0.0);
}

TEST(StrategyResultTest, Q6MatchesEngine) {
  const StratResult r =
      RunStrategy(6, Strategy::kDataCentric, Db(), nullptr);
  exec::Relation engine_result = tpch::RunQuery(6, Db(), nullptr);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_NEAR(r[0].second, engine_result.column("revenue").F64Data()[0],
              1e-6 * r[0].second);
}

TEST(StrategyResultTest, Q14MatchesEngine) {
  const StratResult r =
      RunStrategy(14, Strategy::kAccessAware, Db(), nullptr);
  exec::Relation engine_result = tpch::RunQuery(14, Db(), nullptr);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_NEAR(r[0].second,
              engine_result.column("promo_revenue").F64Data()[0], 1e-6);
}

TEST(StrategyResultTest, Q19MatchesEngine) {
  const StratResult r = RunStrategy(19, Strategy::kHybrid, Db(), nullptr);
  exec::Relation engine_result = tpch::RunQuery(19, Db(), nullptr);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_NEAR(r[0].second, engine_result.column("revenue").F64Data()[0],
              1e-6 * (1 + r[0].second));
}

TEST(StrategyResultTest, Q1SumsMatchEngine) {
  const StratResult r = RunStrategy(1, Strategy::kHybrid, Db(), nullptr);
  exec::Relation e = tpch::RunQuery(1, Db(), nullptr);
  // Strategy rows keyed "rf|ls" hold sum_disc_price.
  for (int64_t g = 0; g < e.num_rows(); ++g) {
    const std::string key = std::string(e.column(0).StringAt(g)) + "|" +
                            std::string(e.column(1).StringAt(g));
    bool found = false;
    for (const auto& [k, v] : r) {
      if (k == key) {
        EXPECT_NEAR(v, e.column("sum_disc_price").F64Data()[g],
                    1e-6 * v);
        found = true;
      }
    }
    EXPECT_TRUE(found) << key;
  }
}

TEST(StrategyCountersTest, AccessAwareStreamsMoreBytes) {
  // Predicate pullup reads full columns; fused tuple-at-a-time
  // short-circuits. On selective Q6 this must show in the counters.
  exec::QueryStats dc, aa;
  RunStrategy(6, Strategy::kDataCentric, Db(), &dc);
  RunStrategy(6, Strategy::kAccessAware, Db(), &aa);
  EXPECT_GT(aa.TotalSeqBytes(), dc.TotalSeqBytes());
}

TEST(StrategyCountersTest, DataCentricPaysBranchCost) {
  exec::QueryStats dc, aa;
  RunStrategy(6, Strategy::kDataCentric, Db(), &dc);
  RunStrategy(6, Strategy::kAccessAware, Db(), &aa);
  EXPECT_GT(dc.TotalComputeOps(), aa.TotalComputeOps());
}

TEST(StrategyModelTest, Fig4ShapeHolds) {
  // access-aware <= hybrid <= data-centric on the servers, and the
  // data-centric/access-aware gap narrows on the Pi.
  const hw::CostModel model;
  const auto& e5 = hw::ProfileByName("op-e5");
  const auto& pi = hw::PiProfile();
  double e5_gap = 0, pi_gap = 0;
  int n = 0;
  for (const int q : {1, 6, 14, 19}) {
    std::map<Strategy, exec::QueryStats> stats;
    for (const Strategy s : kAllStrategies) {
      RunStrategy(q, s, Db(), &stats[s]);
    }
    const double e5_dc = model.QuerySeconds(e5, stats[Strategy::kDataCentric], 1);
    const double e5_aa = model.QuerySeconds(e5, stats[Strategy::kAccessAware], 1);
    const double pi_dc = model.QuerySeconds(pi, stats[Strategy::kDataCentric], 1);
    const double pi_aa = model.QuerySeconds(pi, stats[Strategy::kAccessAware], 1);
    EXPECT_LE(e5_aa, e5_dc * 1.05) << "Q" << q;
    e5_gap += e5_dc / e5_aa;
    pi_gap += pi_dc / pi_aa;
    ++n;
  }
  EXPECT_LT(pi_gap / n, e5_gap / n);  // "less pronounced on the Pi"
}

TEST(StrategyTest, NamesAreStable) {
  EXPECT_STREQ(StrategyName(Strategy::kDataCentric), "data-centric");
  EXPECT_STREQ(StrategyName(Strategy::kHybrid), "hybrid");
  EXPECT_STREQ(StrategyName(Strategy::kAccessAware), "access-aware");
}

}  // namespace
}  // namespace wimpi::strategies
