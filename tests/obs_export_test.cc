// Telemetry export pipeline: every JSON artifact the observability layer
// emits (Chrome trace, trace JSONL, structured event log, profile JSON,
// Prometheus exposition) must round-trip through the repo's own JSON
// parser, the distributed trace must form a coherent causal tree (every
// retry chained to the attempt it retried, every fault flow-linked to the
// retry it caused), and tracing must never perturb results: traced cluster
// runs stay bit-identical to untraced ones across the whole SF-10 subset.
#include <cstdio>
#include <cstdint>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "artifact.h"
#include "cluster/fault.h"
#include "cluster/wimpi_cluster.h"
#include "common/json.h"
#include "engine/executor.h"
#include "gtest/gtest.h"
#include "hw/host_anchor.h"
#include "obs/export/event_log.h"
#include "obs/export/exposition.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "test_util.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace wimpi {
namespace {

constexpr int kNodes = 4;

const engine::Database& TestDb() {
  static engine::Database* db = [] {
    tpch::GenOptions opts;
    opts.scale_factor = 0.02;
    return new engine::Database(tpch::GenerateDatabase(opts));
  }();
  return *db;
}

Result<cluster::DistributedRun> RunWith(int q, cluster::FaultPlan plan) {
  cluster::ClusterOptions opts;
  opts.num_nodes = kNodes;
  opts.faults = std::move(plan);
  const cluster::WimpiCluster wimpi(TestDb(), opts);
  hw::CostModel model;
  return wimpi.Run(q, model);
}

// Enables the trace sink for one scope, leaving it clean afterwards.
class ScopedTracing {
 public:
  ScopedTracing() {
    obs::TraceSink::Global().Clear();
    obs::TraceSink::Global().set_enabled(true);
  }
  ~ScopedTracing() {
    obs::TraceSink::Global().set_enabled(false);
    obs::TraceSink::Global().Clear();
  }
};

uint64_t HexField(const JsonValue& args, const char* key) {
  const JsonValue* v = args.Find(key);
  if (v == nullptr || !v->is_string()) return 0;
  return std::strtoull(v->AsString().c_str(), nullptr, 16);
}

// A trace event as the structural checks below want to see it.
struct ParsedEvent {
  std::string name, cat, ph;
  uint64_t trace = 0, span = 0, parent = 0;
  std::string flow;  // 's'/'f' id field
  double attempt = -1, partition = -1;
};

std::vector<ParsedEvent> ParseTrace(const std::string& json) {
  JsonValue doc;
  std::string error;
  EXPECT_TRUE(JsonValue::Parse(json, &doc, &error)) << error;
  const JsonValue* events = doc.Find("traceEvents");
  EXPECT_NE(events, nullptr);
  EXPECT_TRUE(events->is_array());
  std::vector<ParsedEvent> out;
  for (const JsonValue& e : events->AsArray()) {
    ParsedEvent p;
    p.name = e.GetString("name", "");
    p.cat = e.GetString("cat", "");
    p.ph = e.GetString("ph", "");
    if (const JsonValue* args = e.Find("args"); args != nullptr) {
      p.trace = HexField(*args, "trace");
      p.span = HexField(*args, "span");
      p.parent = HexField(*args, "parent");
      p.attempt = args->GetDouble("attempt", -1);
      p.partition = args->GetDouble("partition", -1);
    }
    if (const JsonValue* id = e.Find("id"); id != nullptr && id->is_string()) {
      p.flow = id->AsString();
    }
    out.push_back(std::move(p));
  }
  return out;
}

std::string TempPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

// --- The acceptance test: a fault-injected distributed run exports one
// coherent trace where every retry has a parent attempt and a causal link
// to the fault that caused it. ---
TEST(TraceExport, RetryChainFormsCausalTree) {
  ScopedTracing tracing;
  // Crashing node 0 guarantees at least one failed attempt, one retry on
  // another node, and one reassignment.
  const auto r = RunWith(1, cluster::FaultPlan::Crash({0}));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_GT(r->retries, 0);
  ASSERT_NE(r->trace_id, 0u);

  const auto events = ParseTrace(obs::TraceSink::Global().ToJson());
  ASSERT_FALSE(events.empty());

  // Index spans and collect per-category counts.
  std::map<uint64_t, const ParsedEvent*> by_span;
  int attempts = 0, faults = 0, partitions = 0, roots = 0;
  for (const auto& e : events) {
    if (e.span != 0) by_span[e.span] = &e;
    if (e.cat == "cluster.attempt") ++attempts;
    if (e.cat == "cluster.fault") ++faults;
    if (e.cat == "cluster.partition") ++partitions;
    if (e.cat == "cluster" && e.ph == "X") ++roots;
  }
  EXPECT_EQ(roots, 1);
  EXPECT_EQ(partitions, kNodes);  // one partition lane per home node
  EXPECT_EQ(attempts, static_cast<int>(r->attempts.size()));
  EXPECT_GT(faults, 0);

  for (const auto& e : events) {
    if (e.ph == "M") continue;
    // Everything the cluster exported carries the run's trace id.
    if (e.cat.rfind("cluster", 0) == 0) {
      EXPECT_EQ(e.trace, r->trace_id);
    }
    // Every parent reference resolves to a recorded span of the same trace.
    if (e.parent != 0) {
      ASSERT_TRUE(by_span.count(e.parent))
          << e.name << " parent " << e.parent << " unresolved";
      EXPECT_EQ(by_span.at(e.parent)->trace, e.trace);
    }
    if (e.cat == "cluster.attempt") {
      ASSERT_NE(e.parent, 0u) << "attempt span without parent";
      const ParsedEvent& parent = *by_span.at(e.parent);
      if (e.attempt > 0) {
        // A retry's parent is the previous attempt of the same partition.
        EXPECT_EQ(parent.cat, "cluster.attempt");
        EXPECT_EQ(parent.partition, e.partition);
        EXPECT_EQ(parent.attempt, e.attempt - 1);
      } else {
        // A first attempt hangs off its partition span.
        EXPECT_EQ(parent.cat, "cluster.partition");
      }
    }
    // Every fault instant is anchored to the attempt that suffered it.
    if (e.cat == "cluster.fault") {
      ASSERT_NE(e.parent, 0u);
      EXPECT_EQ(by_span.at(e.parent)->cat, "cluster.attempt");
    }
  }

  // Every fault has a flow arrow to the retry it caused: each flow id
  // appears exactly once as 's' and once as 'f'.
  std::map<std::string, int> flow_sides;
  int flows = 0;
  for (const auto& e : events) {
    if (e.ph == "s") ++flow_sides[e.flow], ++flows;
    if (e.ph == "f") --flow_sides[e.flow];
  }
  EXPECT_GT(flows, 0);
  for (const auto& [id, balance] : flow_sides) {
    EXPECT_EQ(balance, 0) << "unbalanced flow " << id;
  }
}

TEST(TraceExport, HostSpansJoinTheClusterTrace) {
  ScopedTracing tracing;
  const auto r = RunWith(6, cluster::FaultPlan::Transient(1, 1));
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  // The real-clock partial executions ("cluster.exec") adopt the same
  // trace id as the modeled timeline, so one tree spans both clocks.
  const auto events = ParseTrace(obs::TraceSink::Global().ToJson());
  int exec_spans = 0;
  for (const auto& e : events) {
    if (e.cat == "cluster.exec") {
      ++exec_spans;
      EXPECT_EQ(e.trace, r->trace_id);
    }
  }
  EXPECT_GT(exec_spans, 0);
}

TEST(TraceExport, TracedRunsBitIdenticalToUntraced) {
  // The repo's determinism contract, extended to tracing: enabling the
  // sink must not change results or modeled stats on any SF-10 query.
  const auto plan = cluster::FaultPlan::Generate(42, kNodes);
  for (int i = 0; i < tpch::kNumSf10Queries; ++i) {
    const int q = tpch::kSf10Queries[i];
    SCOPED_TRACE("Q" + std::to_string(q));
    const auto plain = RunWith(q, plan);
    ASSERT_TRUE(plain.ok()) << plain.status().ToString();

    obs::TraceSink::Global().Clear();
    obs::TraceSink::Global().set_enabled(true);
    const auto traced = RunWith(q, plan);
    obs::TraceSink::Global().set_enabled(false);
    ASSERT_TRUE(traced.ok()) << traced.status().ToString();
    EXPECT_GT(obs::TraceSink::Global().size(), 0u);
    obs::TraceSink::Global().Clear();

    // Bit-identical answers (doubles compared by bit pattern downstream)
    // and identical modeled accounting.
    const auto a = ToRefResult(traced->result);
    const auto b = ToRefResult(plain->result);
    ASSERT_EQ(a.size(), b.size());
    for (size_t row = 0; row < a.size(); ++row) {
      ASSERT_TRUE(a[row] == b[row]) << "row " << row;
    }
    EXPECT_EQ(traced->total_seconds, plain->total_seconds);
    EXPECT_EQ(traced->degraded_seconds, plain->degraded_seconds);
    EXPECT_EQ(traced->retries, plain->retries);
    EXPECT_EQ(traced->reassigned_partitions, plain->reassigned_partitions);
    EXPECT_EQ(traced->node_rollups, plain->node_rollups);
    // Only the traced run carries a trace id.
    EXPECT_NE(traced->trace_id, 0u);
    EXPECT_EQ(plain->trace_id, 0u);
  }
}

TEST(TraceExport, RollupsSummarizeNodeImbalance) {
  const auto clean = RunWith(1, cluster::FaultPlan{});
  ASSERT_TRUE(clean.ok());
  const auto& roll = clean->node_rollups;
  ASSERT_TRUE(roll.count("node.busy_s.skew"));
  ASSERT_TRUE(roll.count("node.attempts.sum"));
  EXPECT_EQ(roll.at("node.attempts.sum"),
            static_cast<double>(clean->attempts.size()));
  EXPECT_EQ(roll.at("node.failed_attempts.sum"), 0.0);
  EXPECT_GE(roll.at("node.busy_s.skew"), 1.0);

  // A hard straggler shows up as busy-time skew.
  const auto skewed = RunWith(1, cluster::FaultPlan::Slowdown(2, 8.0));
  ASSERT_TRUE(skewed.ok());
  EXPECT_GT(skewed->node_rollups.at("node.busy_s.skew"),
            roll.at("node.busy_s.skew"));
}

// --- Round-trips: every exported artifact parses with common/json. ---

TEST(TraceExport, JsonAndJsonlParse) {
  ScopedTracing tracing;
  const auto r = RunWith(3, cluster::FaultPlan::Crash({1}));
  ASSERT_TRUE(r.ok());

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(obs::TraceSink::Global().ToJson(), &doc,
                               &error))
      << error;

  const std::string jsonl = obs::TraceSink::Global().ToJsonl();
  size_t start = 0, lines = 0;
  while (start < jsonl.size()) {
    size_t end = jsonl.find('\n', start);
    if (end == std::string::npos) end = jsonl.size();
    const std::string line = jsonl.substr(start, end - start);
    if (!line.empty()) {
      ++lines;
      JsonValue v;
      ASSERT_TRUE(JsonValue::Parse(line, &v, &error))
          << "line " << lines << ": " << error;
      EXPECT_NE(v.Find("name"), nullptr);
      EXPECT_NE(v.Find("ph"), nullptr);
    }
    start = end + 1;
  }
  EXPECT_EQ(lines, obs::TraceSink::Global().size());
}

TEST(ProfileJson, ParsesAndMatchesTreeShape) {
  engine::Executor ex;
  obs::ProfileOptions popts;
  obs::QueryProfile profile;
  exec::QueryStats stats;
  const exec::Relation result = ex.RunProfiled(
      [&](exec::QueryStats* s) { return tpch::RunQuery(6, TestDb(), s); },
      popts, &profile, &stats, "Q6");
  ASSERT_GT(result.num_rows(), 0);

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(profile.ToJson(), &doc, &error)) << error;
  EXPECT_GT(doc.GetDouble("wall_seconds", 0), 0.0);
  const JsonValue* root = doc.Find("root");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->GetString("name", ""), "Q6");
  const JsonValue* children = root->Find("children");
  ASSERT_NE(children, nullptr);
  ASSERT_TRUE(children->is_array());
  EXPECT_FALSE(children->AsArray().empty());
}

TEST(EventLogTest, RecordsClusterLifecycleAsParseableJsonl) {
  auto& elog = obs::EventLog::Global();
  elog.Clear();
  elog.set_enabled(true);
  const auto r = RunWith(1, cluster::FaultPlan::Crash({0}));
  elog.set_enabled(false);
  ASSERT_TRUE(r.ok());
  ASSERT_GT(elog.size(), 0u);

  const std::string jsonl = elog.ToJsonl();
  std::set<std::string> seen_events;
  size_t start = 0;
  while (start < jsonl.size()) {
    size_t end = jsonl.find('\n', start);
    if (end == std::string::npos) end = jsonl.size();
    const std::string line = jsonl.substr(start, end - start);
    if (!line.empty()) {
      JsonValue v;
      std::string error;
      ASSERT_TRUE(JsonValue::Parse(line, &v, &error)) << error << ": " << line;
      for (const char* key : {"ts_us", "level", "component", "event"}) {
        EXPECT_NE(v.Find(key), nullptr) << key;
      }
      seen_events.insert(v.GetString("event", ""));
    }
    start = end + 1;
  }
  // The crash produces the full lifecycle: start, failure, reassignment,
  // completion.
  EXPECT_TRUE(seen_events.count("run.start"));
  EXPECT_TRUE(seen_events.count("attempt.failed"));
  EXPECT_TRUE(seen_events.count("partition.reassigned"));
  EXPECT_TRUE(seen_events.count("node.died"));
  EXPECT_TRUE(seen_events.count("run.complete"));
  elog.Clear();
}

TEST(EventLogTest, RingEvictsOldestAndCountsDrops) {
  auto& elog = obs::EventLog::Global();
  elog.Clear();
  elog.set_capacity(4);
  elog.set_enabled(true);
  const int64_t exported_before =
      obs::MetricsRegistry::Global().counter("eventlog.dropped").Value();
  for (int i = 0; i < 10; ++i) {
    elog.Record(obs::EventLevel::kInfo, "test", "e" + std::to_string(i));
  }
  elog.set_enabled(false);
  EXPECT_EQ(elog.size(), 4u);
  EXPECT_EQ(elog.dropped(), 6);
  // Evictions are mirrored into the registry so scrapers (and wimpi_top)
  // can see a truncated log without polling the EventLog itself.
  EXPECT_EQ(obs::MetricsRegistry::Global().counter("eventlog.dropped").Value(),
            exported_before + 6);
  const auto snap = elog.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.front().event, "e6");
  EXPECT_EQ(snap.back().event, "e9");
  elog.set_capacity(4096);
  elog.Clear();
}

TEST(EventLogTest, LevelsFilterAndDisabledCostsNothing) {
  auto& elog = obs::EventLog::Global();
  elog.Clear();
  // Disabled: nothing recorded regardless of level.
  elog.Record(obs::EventLevel::kError, "test", "dropped");
  EXPECT_EQ(elog.size(), 0u);

  elog.set_enabled(true);
  elog.set_min_level(obs::EventLevel::kWarn);
  elog.Record(obs::EventLevel::kInfo, "test", "below");
  elog.Record(obs::EventLevel::kWarn, "test", "kept",
              {{"value", 3.5}, {"tag", std::string("x")}});
  elog.set_enabled(false);
  elog.set_min_level(obs::EventLevel::kInfo);
  ASSERT_EQ(elog.size(), 1u);
  const auto snap = elog.Snapshot();
  EXPECT_EQ(snap[0].event, "kept");
  EXPECT_EQ(snap[0].level, obs::EventLevel::kWarn);
  // Typed fields survive into the JSONL (numbers unquoted).
  const std::string jsonl = elog.ToJsonl();
  EXPECT_NE(jsonl.find("\"value\":3.5"), std::string::npos) << jsonl;
  EXPECT_NE(jsonl.find("\"tag\":\"x\""), std::string::npos) << jsonl;
  elog.Clear();
}

TEST(Exposition, WriteParseRoundTrip) {
  obs::RegistrySnapshot snap;
  snap.counters["pool.tasks"] = 42;
  snap.gauges["pool.queue_depth"] = 3.5;
  obs::HistogramSnapshot h;
  h.bounds = {1.0, 10.0, 100.0};
  h.bucket_counts = {2, 3, 0, 1};  // 1 overflow sample
  h.count = 6;
  h.sum = 123.5;
  snap.histograms["task.run_us"] = h;

  const std::string text = obs::ExpositionFormat::Write(snap);
  std::vector<obs::ExpositionSample> samples;
  std::string error;
  ASSERT_TRUE(obs::ExpositionFormat::Parse(text, &samples, &error)) << error;

  std::map<std::string, double> plain;     // unlabeled samples
  std::map<std::string, double> buckets;   // le -> cumulative count
  for (const auto& s : samples) {
    if (s.labels.empty()) {
      plain[s.name] = s.value;
    } else if (s.name == "wimpi_task_run_us_bucket") {
      buckets[s.labels.at("le")] = s.value;
    }
  }
  EXPECT_EQ(plain.at("wimpi_pool_tasks"), 42);
  EXPECT_EQ(plain.at("wimpi_pool_queue_depth"), 3.5);
  // Buckets are cumulative; +Inf equals the total count.
  EXPECT_EQ(buckets.at("1"), 2);
  EXPECT_EQ(buckets.at("10"), 5);
  EXPECT_EQ(buckets.at("100"), 5);
  EXPECT_EQ(buckets.at("+Inf"), 6);
  EXPECT_EQ(plain.at("wimpi_task_run_us_count"), 6);
  EXPECT_DOUBLE_EQ(plain.at("wimpi_task_run_us_sum"), 123.5);
}

TEST(Exposition, GlobalRegistryExports) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.ResetForTesting();
  reg.counter("export.test.counter").Add(7);
  reg.histogram("export.test.lat_us").Record(12.0);

  const std::string text = obs::ExpositionFormat::WriteGlobal();
  EXPECT_NE(text.find("wimpi_export_test_counter 7"), std::string::npos)
      << text;
  EXPECT_NE(text.find("wimpi_export_test_lat_us_count 1"), std::string::npos);
  std::vector<obs::ExpositionSample> samples;
  std::string error;
  ASSERT_TRUE(obs::ExpositionFormat::Parse(text, &samples, &error)) << error;
  reg.ResetForTesting();
}

TEST(Exposition, InfoMetricsRoundTripWithLabels) {
  // Info metrics (host.info convention): written as a labeled gauge of
  // constant value 1; the parser must hand back the identity labels.
  obs::RegistrySnapshot snap;
  snap.infos["host.info"] = {{"cpu", "Test CPU @ 1.5GHz"}, {"threads", "4"}};
  snap.counters["pool.tasks"] = 1;

  const std::string text = obs::ExpositionFormat::Write(snap);
  std::vector<obs::ExpositionSample> samples;
  std::string error;
  ASSERT_TRUE(obs::ExpositionFormat::Parse(text, &samples, &error)) << error;

  bool found = false;
  for (const auto& s : samples) {
    if (s.name != "wimpi_host_info") continue;
    found = true;
    EXPECT_EQ(s.value, 1);
    EXPECT_EQ(s.labels.at("cpu"), "Test CPU @ 1.5GHz");
    EXPECT_EQ(s.labels.at("threads"), "4");
  }
  EXPECT_TRUE(found) << text;
}

TEST(Exposition, PublishHostInfoLandsInGlobalExposition) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.ResetForTesting();
  hw::PublishHostInfo();
  const std::string text = obs::ExpositionFormat::WriteGlobal();
  std::vector<obs::ExpositionSample> samples;
  std::string error;
  ASSERT_TRUE(obs::ExpositionFormat::Parse(text, &samples, &error)) << error;
  bool found = false;
  for (const auto& s : samples) {
    if (s.name != "wimpi_host_info") continue;
    found = true;
    EXPECT_FALSE(s.labels.at("cpu").empty());
    EXPECT_GT(std::stoi(s.labels.at("threads")), 0);
  }
  EXPECT_TRUE(found) << text;
  reg.ResetForTesting();
}

TEST(Exposition, HelpCommentsRoundTripWithMeta) {
  obs::RegistrySnapshot snap;
  snap.counters["service.submitted"] = 5;
  obs::HistogramSnapshot h;
  h.bounds = {1.0};
  h.bucket_counts = {1, 0};
  h.count = 1;
  h.sum = 0.5;
  snap.histograms["service.latency_us"] = h;

  const std::string text = obs::ExpositionFormat::Write(snap);
  // HELP precedes TYPE for each family, and carries the table's text.
  const size_t help = text.find("# HELP wimpi_service_submitted ");
  const size_t type = text.find("# TYPE wimpi_service_submitted counter");
  ASSERT_NE(help, std::string::npos) << text;
  ASSERT_NE(type, std::string::npos) << text;
  EXPECT_LT(help, type);

  std::vector<obs::ExpositionSample> samples;
  std::map<std::string, obs::ExpositionMeta> meta;
  std::string error;
  ASSERT_TRUE(obs::ExpositionFormat::Parse(text, &samples, &meta, &error))
      << error;
  ASSERT_TRUE(meta.count("wimpi_service_submitted"));
  EXPECT_EQ(meta["wimpi_service_submitted"].type, "counter");
  EXPECT_EQ(meta["wimpi_service_submitted"].help,
            obs::ExpositionFormat::HelpFor("service.submitted"));
  ASSERT_TRUE(meta.count("wimpi_service_latency_us"));
  EXPECT_EQ(meta["wimpi_service_latency_us"].type, "histogram");

  // The meta-less overload sees the same samples, skipping both comment
  // forms.
  std::vector<obs::ExpositionSample> plain;
  ASSERT_TRUE(obs::ExpositionFormat::Parse(text, &plain, &error)) << error;
  EXPECT_EQ(plain.size(), samples.size());
}

TEST(Exposition, EscapedLabelValuesParse) {
  // Backslash, escaped quote, a '}' inside a quoted value, and a newline
  // escape — each must survive the label scan.
  const std::string text =
      "m{a=\"x\\\\y\",b=\"q\\\"z\",c=\"br}ace\",d=\"li\\nne\"} 1\n";
  std::vector<obs::ExpositionSample> samples;
  std::string error;
  ASSERT_TRUE(obs::ExpositionFormat::Parse(text, &samples, &error)) << error;
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].labels.at("a"), "x\\y");
  EXPECT_EQ(samples[0].labels.at("b"), "q\"z");
  EXPECT_EQ(samples[0].labels.at("c"), "br}ace");
  EXPECT_EQ(samples[0].labels.at("d"), "li\nne");
  // And the writer-side escape produces what the parser undoes.
  EXPECT_EQ(obs::ExpositionFormat::EscapeLabelValue("x\\y"), "x\\\\y");
  EXPECT_EQ(obs::ExpositionFormat::EscapeLabelValue("q\"z"), "q\\\"z");
  EXPECT_EQ(obs::ExpositionFormat::EscapeLabelValue("a\nb"), "a\\nb");
}

TEST(Exposition, PlusInfBucketBoundParses) {
  const std::string text = "x_bucket{le=\"+Inf\"} 7\n";
  std::vector<obs::ExpositionSample> samples;
  std::string error;
  ASSERT_TRUE(obs::ExpositionFormat::Parse(text, &samples, &error)) << error;
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].labels.at("le"), "+Inf");
  EXPECT_EQ(samples[0].value, 7);
}

TEST(Exposition, MalformedLineKeepsEarlierSamples) {
  const std::string text = "good 1\nbad{unterminated 2\nnever 3\n";
  std::vector<obs::ExpositionSample> samples;
  std::string error;
  EXPECT_FALSE(obs::ExpositionFormat::Parse(text, &samples, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  // Samples before the malformed line survive for recovery.
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].name, "good");
  EXPECT_EQ(samples[0].value, 1);
}

TEST(Exposition, SanitizeName) {
  EXPECT_EQ(obs::ExpositionFormat::SanitizeName("pool.worker0.busy_us"),
            "wimpi_pool_worker0_busy_us");
  EXPECT_EQ(obs::ExpositionFormat::SanitizeName("a-b c"), "wimpi_a_b_c");
}

// --- Artifact schema v2 ---

TEST(ArtifactV2, RollupsRoundTripAndGate) {
  bench::RunArtifact a = bench::MakeArtifact("table3_sf10", 10.0);
  a.rows["wimpi-24"]["Q1"] = 1.5;
  a.rollups["Q1.node.busy_s.skew"] = 1.25;
  a.rollups["Q1.node.attempts.sum"] = 30;
  const std::string path = TempPath("wimpi_obs_export_v2.json");
  ASSERT_TRUE(bench::WriteArtifact(path, a));

  bench::RunArtifact b;
  std::string error;
  ASSERT_TRUE(bench::ReadArtifact(path, &b, &error)) << error;
  EXPECT_EQ(b.schema_version, bench::kArtifactSchemaVersion);
  EXPECT_EQ(b.rollups, a.rollups);
  std::remove(path.c_str());

  // Unchanged rollups pass the gate; a regressed skew fails it.
  bench::CompareOptions copts;
  EXPECT_TRUE(bench::CompareArtifacts(a, b, copts).ok);
  b.rollups["Q1.node.busy_s.skew"] = 2.5;
  const auto res = bench::CompareArtifacts(a, b, copts);
  EXPECT_FALSE(res.ok);
  ASSERT_EQ(res.diffs.size(), 1u);
  EXPECT_EQ(res.diffs[0].series, "rollups");

  // Dropped rollup coverage is an error when missing metrics are fatal.
  b.rollups.erase("Q1.node.busy_s.skew");
  copts.fail_on_missing = true;
  EXPECT_FALSE(bench::CompareArtifacts(a, b, copts).ok);
}

TEST(ArtifactV2, AcceptsV1RejectsV3) {
  const std::string v1 = R"({"schema_version":1,"bench":"smoke",
    "model_sf":1.0,"unit":"seconds","rows":{"a":{"Q1":2.0}}})";
  const std::string v3 = R"({"schema_version":3,"bench":"smoke",
    "model_sf":1.0,"unit":"seconds","rows":{}})";

  const std::string path = TempPath("wimpi_obs_export_ver.json");
  std::string error;
  bench::RunArtifact out;

  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fwrite(v1.data(), 1, v1.size(), f);
  std::fclose(f);
  EXPECT_TRUE(bench::ReadArtifact(path, &out, &error)) << error;
  EXPECT_EQ(out.schema_version, 1);
  EXPECT_TRUE(out.rollups.empty());
  EXPECT_EQ(out.rows.at("a").at("Q1"), 2.0);

  f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fwrite(v3.data(), 1, v3.size(), f);
  std::fclose(f);
  EXPECT_FALSE(bench::ReadArtifact(path, &out, &error));
  EXPECT_NE(error.find("schema_version"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wimpi
