// Microbenchmark kernels (real host runs) and the Figure 2 projection.
#include "gtest/gtest.h"
#include "hw/cost_model.h"
#include "micro/kernels.h"
#include "micro/model.h"

namespace wimpi::micro {
namespace {

TEST(KernelTest, WhetstoneProducesPositiveMwips) {
  EXPECT_GT(RunWhetstone(20), 0.0);
}

TEST(KernelTest, DhrystoneProducesPositiveDmips) {
  EXPECT_GT(RunDhrystone(20), 0.0);
}

TEST(KernelTest, SysbenchPrimeScalesWithWork) {
  const double small = RunSysbenchPrime(2000, 2);
  const double big = RunSysbenchPrime(20000, 2);
  EXPECT_GT(small, 0.0);
  EXPECT_GT(big, 3 * small);  // trial division is superlinear in max_prime
}

TEST(KernelTest, MemoryBandwidthIsPlausible) {
  const double gbps = RunMemoryBandwidth(64 << 20, 3);
  EXPECT_GT(gbps, 0.5);
  EXPECT_LT(gbps, 1000.0);
}

TEST(ModelTest, AllCoreBeatsOrMatchesSingleCore) {
  const hw::CostModel cm;
  const MicrobenchModel m(cm);
  for (const auto& p : hw::AllProfiles()) {
    EXPECT_GE(m.WhetstoneMwips(p, true), m.WhetstoneMwips(p, false));
    EXPECT_GE(m.DhrystoneDmips(p, true), m.DhrystoneDmips(p, false));
    EXPECT_LE(m.SysbenchPrimeSeconds(p, true),
              m.SysbenchPrimeSeconds(p, false));
    EXPECT_GE(m.MemoryBandwidthGbps(p, true),
              m.MemoryBandwidthGbps(p, false));
  }
}

TEST(ModelTest, AllCoreComputeGapMatchesPaper) {
  // "the server-grade CPUs range from 10-90x more powerful" (all cores).
  const hw::CostModel cm;
  const MicrobenchModel m(cm);
  const double pi = m.DhrystoneDmips(hw::PiProfile(), true);
  for (const auto* p : hw::ServerProfiles()) {
    const double gap = m.DhrystoneDmips(*p, true) / pi;
    EXPECT_GE(gap, 5.0) << p->name;
    EXPECT_LE(gap, 95.0) << p->name;
  }
  // c6g.metal wins by a wide margin.
  const double c6g = m.DhrystoneDmips(hw::ProfileByName("c6g.metal"), true);
  for (const auto* p : hw::ServerProfiles()) {
    if (p->name != "c6g.metal") {
      EXPECT_GT(c6g, 1.5 * m.DhrystoneDmips(*p, true)) << p->name;
    }
  }
}

TEST(ModelTest, PiSingleCoreMwipsNearPublishedScore) {
  const hw::CostModel cm;
  const MicrobenchModel m(cm);
  EXPECT_NEAR(m.WhetstoneMwips(hw::PiProfile(), false), 700, 50);
  EXPECT_NEAR(m.DhrystoneDmips(hw::PiProfile(), false), 3100, 300);
}

}  // namespace
}  // namespace wimpi::micro
