// Profiling must be an observer, not a participant: running any TPC-H
// query with full profiling enabled (operator tree + trace spans + pool
// metrics) must produce bit-identical results to the unprofiled engine at
// every thread count. Also smoke-checks the artifacts a profiled run
// produces end to end: tree shape, trace JSON, residual report.
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "engine/database.h"
#include "engine/executor.h"
#include "exec/exec_options.h"
#include "gtest/gtest.h"
#include "hw/cost_model.h"
#include "hw/host_anchor.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/residual.h"
#include "obs/trace.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace wimpi {
namespace {

const engine::Database& TestDb() {
  static engine::Database* db = nullptr;
  if (db == nullptr) {
    tpch::GenOptions opts;
    opts.scale_factor = 0.01;
    db = new engine::Database(tpch::GenerateDatabase(opts));
  }
  return *db;
}

std::vector<int> ThreadCounts() {
  const int hc =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  std::vector<int> counts = {1, 2, 4};
  if (hc != 1 && hc != 2 && hc != 4) counts.push_back(hc);
  return counts;
}

// Exact (bit-level) relation comparison, same bar as parallel_queries_test:
// profiled and unprofiled runs must not differ in a single bit.
void ExpectRelationsIdentical(const exec::Relation& a,
                              const exec::Relation& b) {
  ASSERT_EQ(a.num_columns(), b.num_columns());
  ASSERT_EQ(a.num_rows(), b.num_rows());
  const int64_t n = a.num_rows();
  for (int c = 0; c < a.num_columns(); ++c) {
    ASSERT_EQ(a.name(c), b.name(c));
    const auto& ca = a.column(c);
    const auto& cb = b.column(c);
    ASSERT_EQ(ca.type(), cb.type()) << "column " << a.name(c);
    for (int64_t r = 0; r < n; ++r) {
      switch (ca.type()) {
        case storage::DataType::kInt64:
          ASSERT_EQ(ca.I64Data()[r], cb.I64Data()[r])
              << a.name(c) << " row " << r;
          break;
        case storage::DataType::kFloat64:
          ASSERT_EQ(ca.F64Data()[r], cb.F64Data()[r])
              << a.name(c) << " row " << r;
          break;
        case storage::DataType::kString:
          ASSERT_EQ(ca.StringAt(r), cb.StringAt(r))
              << a.name(c) << " row " << r;
          break;
        default:
          ASSERT_EQ(ca.I32Data()[r], cb.I32Data()[r])
              << a.name(c) << " row " << r;
          break;
      }
    }
  }
}

obs::ProfileOptions FullProfiling() {
  obs::ProfileOptions popts;
  popts.operator_profile = true;
  popts.trace = true;
  popts.pool_metrics = true;
  return popts;
}

class ObsQueryTest : public ::testing::TestWithParam<int> {};

TEST_P(ObsQueryTest, ProfiledRunIsBitIdenticalAtEveryThreadCount) {
  const int q = GetParam();
  const engine::Database& db = TestDb();

  for (const int threads : ThreadCounts()) {
    SCOPED_TRACE("num_threads=" + std::to_string(threads));
    engine::Executor ex;
    ex.set_num_threads(threads);
    // Small morsels force real fan-out even at SF 0.01.
    ex.set_morsel_rows(4096);

    const exec::Relation plain =
        ex.Run([&](exec::QueryStats* s) { return tpch::RunQuery(q, db, s); });

    obs::QueryProfile profile;
    exec::QueryStats stats;
    const exec::Relation profiled = ex.RunProfiled(
        [&](exec::QueryStats* s) { return tpch::RunQuery(q, db, s); },
        FullProfiling(), &profile, &stats, "Q" + std::to_string(q));
    obs::TraceSink::Global().Clear();

    ExpectRelationsIdentical(profiled, plain);

    // The profiled run really produced a tree.
    EXPECT_FALSE(profile.root.children.empty());
    EXPECT_GT(profile.wall_seconds, 0);
    EXPECT_LE(profile.OperatorSeconds(), profile.wall_seconds);

    // Profiling is fully torn down afterwards.
    EXPECT_FALSE(obs::ProfilerActive());
    EXPECT_FALSE(obs::TraceSink::Global().enabled());
    EXPECT_FALSE(obs::PoolMetricsEnabled());
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, ObsQueryTest, ::testing::Range(1, 23),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Q" + std::to_string(info.param);
                         });

TEST(ObsQueries, TraceCapturesMorselSpans) {
  const engine::Database& db = TestDb();
  engine::Executor ex;
  ex.set_num_threads(4);
  ex.set_morsel_rows(4096);

  obs::ProfileOptions popts;
  popts.trace = true;
  obs::QueryProfile profile;
  ex.RunProfiled(
      [&](exec::QueryStats* s) { return tpch::RunQuery(6, db, s); }, popts,
      &profile, nullptr, "Q6");

  auto& sink = obs::TraceSink::Global();
  ASSERT_GT(sink.size(), 0u);
  const auto events = sink.Snapshot();
  // Morsel spans exist and are well-formed. (Which tid executes a morsel
  // is scheduler-dependent — at this scale the query thread may claim them
  // all — so we only check ids are assigned, not how work was spread.)
  size_t morsel_spans = 0;
  for (const auto& e : events) {
    if (e.args_json.find("\"morsel\"") != std::string::npos) ++morsel_spans;
    EXPECT_GE(e.tid, 0);
    EXPECT_GE(e.dur_us, 0);
    EXPECT_FALSE(e.name.empty());
  }
  EXPECT_GT(morsel_spans, 1u);

  const std::string json = sink.ToJson();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.substr(json.size() - 1), "}");
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  sink.Clear();
}

TEST(ObsQueries, PoolMetricsCountTasks) {
  const engine::Database& db = TestDb();
  auto& reg = obs::MetricsRegistry::Global();
  reg.ResetForTesting();

  engine::Executor ex;
  ex.set_num_threads(4);
  ex.set_morsel_rows(4096);
  obs::ProfileOptions popts;
  popts.pool_metrics = true;
  obs::QueryProfile profile;
  ex.RunProfiled(
      [&](exec::QueryStats* s) { return tpch::RunQuery(1, db, s); }, popts,
      &profile, nullptr, "Q1");

  const auto snap = reg.ScalarSnapshot();
  const auto tasks = snap.find("pool.tasks");
  ASSERT_NE(tasks, snap.end());
  EXPECT_GT(tasks->second, 0);
  const auto waits = snap.find("pool.task.queue_wait_us.count");
  ASSERT_NE(waits, snap.end());
  EXPECT_GT(waits->second, 0);
  reg.ResetForTesting();
}

TEST(ObsQueries, ResidualReportForPaperHeadlineQueries) {
  const engine::Database& db = TestDb();
  const hw::CostModel model;
  const hw::HardwareProfile host = hw::HostProfile();

  for (const int q : {1, 6}) {
    SCOPED_TRACE("Q" + std::to_string(q));
    engine::Executor ex;
    ex.set_num_threads(2);
    obs::QueryProfile profile;
    exec::QueryStats stats;  // residuals need the plan's OpStats
    ex.RunProfiled(
        [&](exec::QueryStats* s) { return tpch::RunQuery(q, db, s); },
        obs::ProfileOptions{}, &profile, &stats, "Q" + std::to_string(q));

    const obs::ResidualReport report =
        obs::CostModelResiduals(profile, model, host, 2);
    EXPECT_EQ(report.threads, 2);
    EXPECT_FALSE(report.entries.empty());
    EXPECT_GT(report.anchor, 0);
    const std::string text = report.Format();
    EXPECT_NE(text.find("Q" + std::to_string(q)), std::string::npos);
  }
}

}  // namespace
}  // namespace wimpi
