// End-to-end validation of morsel-parallel execution: every TPC-H query,
// at two scale factors, must produce the same answer at every thread count
// — checked against the row-at-a-time reference, plus bit-identity of the
// num_threads=1 path with the plain engine and run-to-run determinism at a
// fixed thread count. Thread counts above the host's core count are
// exercised deliberately; determinism must not depend on physical cores.
#include <thread>
#include <tuple>
#include <vector>

#include "engine/database.h"
#include "engine/executor.h"
#include "exec/exec_options.h"
#include "gtest/gtest.h"
#include "reference.h"
#include "test_util.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace wimpi {
namespace {

constexpr double kScaleFactors[] = {0.01, 0.1};

const engine::Database& TestDb(int sf_idx) {
  static engine::Database* dbs[2] = {nullptr, nullptr};
  if (dbs[sf_idx] == nullptr) {
    tpch::GenOptions opts;
    opts.scale_factor = kScaleFactors[sf_idx];
    dbs[sf_idx] = new engine::Database(tpch::GenerateDatabase(opts));
  }
  return *dbs[sf_idx];
}

std::vector<int> ThreadCounts() {
  const int hc =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  std::vector<int> counts = {1, 2, 4};
  if (hc != 1 && hc != 2 && hc != 4) counts.push_back(hc);
  return counts;
}

// Exact (bit-level) relation comparison: same shape, names, types, and raw
// column payloads. Used where the engine guarantees determinism, not just
// numerically-equal answers.
void ExpectRelationsIdentical(const exec::Relation& a,
                              const exec::Relation& b) {
  ASSERT_EQ(a.num_columns(), b.num_columns());
  ASSERT_EQ(a.num_rows(), b.num_rows());
  const int64_t n = a.num_rows();
  for (int c = 0; c < a.num_columns(); ++c) {
    ASSERT_EQ(a.name(c), b.name(c));
    const auto& ca = a.column(c);
    const auto& cb = b.column(c);
    ASSERT_EQ(ca.type(), cb.type()) << "column " << a.name(c);
    for (int64_t r = 0; r < n; ++r) {
      switch (ca.type()) {
        case storage::DataType::kInt64:
          ASSERT_EQ(ca.I64Data()[r], cb.I64Data()[r])
              << a.name(c) << " row " << r;
          break;
        case storage::DataType::kFloat64:
          ASSERT_EQ(ca.F64Data()[r], cb.F64Data()[r])
              << a.name(c) << " row " << r;
          break;
        case storage::DataType::kString:
          ASSERT_EQ(ca.StringAt(r), cb.StringAt(r))
              << a.name(c) << " row " << r;
          break;
        default:
          ASSERT_EQ(ca.I32Data()[r], cb.I32Data()[r])
              << a.name(c) << " row " << r;
          break;
      }
    }
  }
}

// Param: (scale factor index, query number).
class ParallelQueryTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ParallelQueryTest, MatchesReferenceAtEveryThreadCount) {
  const auto [sf_idx, q] = GetParam();
  const engine::Database& db = TestDb(sf_idx);
  const tpch_ref::RefResult expected = tpch_ref::RunReference(q, db);

  for (const int threads : ThreadCounts()) {
    SCOPED_TRACE("num_threads=" + std::to_string(threads));
    engine::Executor ex;
    ex.set_num_threads(threads);
    const exec::Relation result =
        ex.Run([&](exec::QueryStats* s) { return tpch::RunQuery(q, db, s); });
    ExpectRefResultsEqual(ToRefResult(result), expected);
  }
}

TEST_P(ParallelQueryTest, OneThreadIsBitIdenticalToPlainEngine) {
  const auto [sf_idx, q] = GetParam();
  const engine::Database& db = TestDb(sf_idx);

  const exec::Relation plain = tpch::RunQuery(q, db, nullptr);
  engine::Executor ex;  // default options: num_threads = 1
  const exec::Relation via_executor =
      ex.Run([&](exec::QueryStats* s) { return tpch::RunQuery(q, db, s); });
  ExpectRelationsIdentical(via_executor, plain);
}

TEST_P(ParallelQueryTest, ParallelRunsAreDeterministic) {
  const auto [sf_idx, q] = GetParam();
  const engine::Database& db = TestDb(sf_idx);

  engine::Executor ex;
  ex.set_num_threads(4);
  // Small morsels force real fan-out even at SF 0.01.
  ex.set_morsel_rows(4096);
  auto run = [&] {
    return ex.Run([&](exec::QueryStats* s) { return tpch::RunQuery(q, db, s); });
  };
  const exec::Relation first = run();
  const exec::Relation second = run();
  // Morsel boundaries and merge order are fixed, so two runs at the same
  // thread count agree bit-for-bit no matter how workers were scheduled.
  ExpectRelationsIdentical(second, first);
}

INSTANTIATE_TEST_SUITE_P(
    AllQueries, ParallelQueryTest,
    ::testing::Combine(::testing::Range(0, 2), ::testing::Range(1, 23)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      const int sf_idx = std::get<0>(info.param);
      return "SF" + std::string(sf_idx == 0 ? "001" : "010") + "Q" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace wimpi
