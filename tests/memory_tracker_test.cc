// MemoryTracker concurrency: used/peak accounting must stay exact under
// concurrent Consume/Release from pool-worker-like threads.
#include "storage/memory_tracker.h"

#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace wimpi::storage {
namespace {

TEST(MemoryTracker, SingleThreadedBasics) {
  MemoryTracker t(/*budget_bytes=*/100);
  t.Consume(60);
  EXPECT_EQ(t.used(), 60);
  EXPECT_EQ(t.peak(), 60);
  EXPECT_FALSE(t.over_budget());
  t.Consume(60);
  EXPECT_TRUE(t.over_budget());
  EXPECT_EQ(t.PeakOvershoot(), 20);
  EXPECT_FALSE(t.CheckBudget("probe").ok());
  t.Release(120);
  EXPECT_EQ(t.used(), 0);
  EXPECT_EQ(t.peak(), 120);  // peak is sticky
  EXPECT_FALSE(t.over_budget());
  t.Reset();
  EXPECT_EQ(t.used(), 0);
  EXPECT_EQ(t.peak(), 0);
}

TEST(MemoryTracker, ConcurrentConsumeReleaseBalancesToZero) {
  MemoryTracker t;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  constexpr int64_t kChunk = 64;
  std::vector<std::thread> workers;
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&t] {
      for (int j = 0; j < kIters; ++j) {
        t.Consume(kChunk);
        t.Release(kChunk);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(t.used(), 0);
  // Every thread held kChunk at some point, so peak is at least kChunk and
  // at most everything held at once.
  EXPECT_GE(t.peak(), kChunk);
  EXPECT_LE(t.peak(), kThreads * kChunk);
}

TEST(MemoryTracker, ConcurrentPeakNeverUnderReports) {
  // Each thread holds its full allocation before anyone releases, so the
  // true high-water mark is exactly kThreads * kPerThread; the CAS loop
  // must not lose it.
  MemoryTracker t;
  constexpr int kThreads = 8;
  constexpr int64_t kPerThread = 1 << 20;
  std::atomic<int> holding{0};
  std::vector<std::thread> workers;
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&t, &holding] {
      t.Consume(kPerThread);
      holding.fetch_add(1);
      while (holding.load() < kThreads) std::this_thread::yield();
      t.Release(kPerThread);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(t.used(), 0);
  EXPECT_EQ(t.peak(), kThreads * kPerThread);
}

TEST(MemoryTracker, ConcurrentNetGrowthIsExact) {
  MemoryTracker t(/*budget_bytes=*/1);
  constexpr int kThreads = 4;
  constexpr int kIters = 10000;
  std::vector<std::thread> workers;
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&t] {
      for (int j = 0; j < kIters; ++j) {
        t.Consume(3);
        t.Release(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  const int64_t expected = int64_t{kThreads} * kIters * 2;
  EXPECT_EQ(t.used(), expected);
  EXPECT_GE(t.peak(), expected);
  EXPECT_TRUE(t.over_budget());
  EXPECT_GE(t.PeakOvershoot(), expected - 1);
}

}  // namespace
}  // namespace wimpi::storage
