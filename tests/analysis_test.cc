#include "analysis/metrics.h"
#include "gtest/gtest.h"
#include "hw/profile.h"

namespace wimpi::analysis {
namespace {

TEST(MetricsTest, ServerMsrpDoublesForDualSocket) {
  EXPECT_DOUBLE_EQ(ServerMsrp(hw::ProfileByName("op-e5")), 2 * 1389);
  EXPECT_DOUBLE_EQ(ServerMsrp(hw::ProfileByName("op-gold")), 2 * 3358);
  EXPECT_LT(ServerMsrp(hw::ProfileByName("m5.metal")), 0);  // unavailable
}

TEST(MetricsTest, PiClusterCosts) {
  EXPECT_DOUBLE_EQ(PiClusterMsrp(24), 840);  // the paper's $840 WIMPI
  EXPECT_NEAR(PiClusterHourly(24), 24 * 0.0004, 1e-12);
  // WIMPI at 24 nodes draws ~122 W max (paper §II-B).
  EXPECT_NEAR(PiClusterEnergyJoules(24, 1.0), 122.4, 0.5);
}

TEST(MetricsTest, ServerEnergyUsesTdp) {
  EXPECT_DOUBLE_EQ(ServerEnergyJoules(hw::ProfileByName("op-gold"), 2.0),
                   330.0);
  EXPECT_LT(ServerEnergyJoules(hw::ProfileByName("c6g.metal"), 1.0), 0);
}

TEST(MetricsTest, ImprovementDefinition) {
  // "5x could mean the Pi is 5x faster at the same cost, or 2x slower but
  // 10x cheaper" -- both forms must give the same factor.
  EXPECT_DOUBLE_EQ(Improvement(1.0, 5.0, 1.0, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Improvement(1.0, 10.0, 2.0, 1.0), 5.0);
  // Break-even.
  EXPECT_DOUBLE_EQ(Improvement(2.0, 3.0, 2.0, 3.0), 1.0);
}

TEST(MetricsTest, Median) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2);
  EXPECT_DOUBLE_EQ(Median({4, 1, 2, 3}), 2.5);
  EXPECT_DOUBLE_EQ(Median({7}), 7);
}

}  // namespace
}  // namespace wimpi::analysis
