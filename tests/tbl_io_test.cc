#include <cstdio>
#include <filesystem>

#include "gtest/gtest.h"
#include "tpch/dbgen.h"
#include "tpch/tbl_io.h"

namespace wimpi::tpch {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(TblIoTest, RoundTripLineitem) {
  GenOptions opts;
  opts.scale_factor = 0.002;
  std::shared_ptr<storage::Table> orders, lineitem;
  GenerateOrdersAndLineitem(opts, &orders, &lineitem);

  const std::string path = TempPath("wimpi_lineitem_test.tbl");
  auto written = WriteTbl(*lineitem, path);
  ASSERT_TRUE(written.ok()) << written.status().ToString();
  EXPECT_EQ(*written, lineitem->num_rows());

  storage::Table loaded("lineitem", lineitem->schema());
  auto read = ReadTbl(path, &loaded);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  loaded.FinishLoad();
  ASSERT_EQ(loaded.num_rows(), lineitem->num_rows());
  for (int64_t i = 0; i < loaded.num_rows(); i += 17) {
    EXPECT_EQ(loaded.column("l_orderkey").I64Data()[i],
              lineitem->column("l_orderkey").I64Data()[i]);
    EXPECT_EQ(loaded.column("l_shipdate").I32Data()[i],
              lineitem->column("l_shipdate").I32Data()[i]);
    EXPECT_NEAR(loaded.column("l_extendedprice").F64Data()[i],
                lineitem->column("l_extendedprice").F64Data()[i], 0.005);
    EXPECT_EQ(loaded.column("l_shipmode").StringAt(i),
              lineitem->column("l_shipmode").StringAt(i));
  }
  std::filesystem::remove(path);
}

TEST(TblIoTest, ReadRejectsWrongArity) {
  const std::string path = TempPath("wimpi_bad.tbl");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("1|2|\n", f);
    std::fclose(f);
  }
  storage::Schema s({{"a", storage::DataType::kInt32}});
  storage::Table t("t", s);
  const auto r = ReadTbl(path, &t);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::filesystem::remove(path);
}

TEST(TblIoTest, MissingFileIsNotFound) {
  storage::Schema s({{"a", storage::DataType::kInt32}});
  storage::Table t("t", s);
  const auto r = ReadTbl("/nonexistent/nope.tbl", &t);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace wimpi::tpch
