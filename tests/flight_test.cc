// Flight recorder, per-query resource accounting plumbing, slow-query log
// and SLO tracker (ISSUE #7). The service-level integration case verifies
// the tail-based trigger path end to end: a slow query retroactively
// yields a parseable Chrome trace dump plus a slow-query-log entry.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "exec/morsel_exec.h"
#include "gtest/gtest.h"
#include "obs/clock.h"
#include "obs/flight/flight_recorder.h"
#include "obs/flight/slow_query_log.h"
#include "obs/metrics.h"
#include "service/query_service.h"
#include "service/slo_tracker.h"

namespace wimpi {
namespace {

namespace flight = obs::flight;
using flight::EventKind;
using flight::FlightEvent;
using flight::FlightRecorder;

std::string TempPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "";
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

TEST(FlightRecorderTest, RecordSnapshotDecode) {
  auto& rec = FlightRecorder::Global();
  rec.set_enabled(true);
  const uint64_t q = 0xABCDEF;  // unlikely to collide with service ids
  FlightRecorder::Record(EventKind::kQuerySubmit, q, 1000, 4096);
  FlightRecorder::Record(EventKind::kQueryFinish, q, 0, 777);

  const auto events = rec.Snapshot();
  const FlightEvent* submit = nullptr;
  const FlightEvent* finish = nullptr;
  for (const auto& e : events) {
    if (e.query != q) continue;
    if (e.kind == EventKind::kQuerySubmit) submit = &e;
    if (e.kind == EventKind::kQueryFinish) finish = &e;
  }
  ASSERT_NE(submit, nullptr);
  ASSERT_NE(finish, nullptr);
  EXPECT_EQ(submit->a, 1000);
  EXPECT_EQ(submit->b, 4096);
  EXPECT_EQ(finish->b, 777);
  EXPECT_GT(submit->ts_us, 0);
  EXPECT_LE(submit->ts_us, finish->ts_us);
  // Snapshot is merged oldest-first.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_us, events[i].ts_us);
  }
}

TEST(FlightRecorderTest, DisabledRecordsNothing) {
  auto& rec = FlightRecorder::Global();
  rec.set_enabled(false);
  const int64_t before = rec.TotalRecorded();
  FlightRecorder::Record(EventKind::kPoolTask, 0, 1, 2);
  EXPECT_EQ(rec.TotalRecorded(), before);
  rec.set_enabled(true);
  FlightRecorder::Record(EventKind::kPoolTask, 0, 1, 2);
  EXPECT_EQ(rec.TotalRecorded(), before + 1);
}

TEST(FlightRecorderTest, RingWrapKeepsNewestAndCountsDrops) {
  auto& rec = FlightRecorder::Global();
  rec.set_enabled(true);
  rec.set_ring_capacity(64);
  // A fresh thread gets a fresh (small) ring; overflow it.
  std::thread t([&] {
    for (int i = 0; i < 200; ++i) {
      FlightRecorder::Record(EventKind::kMorselBatch, 0x77AA, i, i);
    }
  });
  t.join();
  rec.set_ring_capacity(8192);  // restore for later rings

  int resident = 0;
  int max_a = -1;
  for (const auto& e : rec.Snapshot()) {
    if (e.query == 0x77AA) {
      ++resident;
      max_a = std::max(max_a, static_cast<int>(e.a));
    }
  }
  EXPECT_LE(resident, 64);
  EXPECT_GT(resident, 0);
  EXPECT_EQ(max_a, 199);  // newest history wins
  EXPECT_GT(rec.TotalDropped(), 0);
}

TEST(FlightRecorderTest, SnapshotSinceFiltersWindow) {
  auto& rec = FlightRecorder::Global();
  rec.set_enabled(true);
  FlightRecorder::Record(EventKind::kPoolTask, 0x5151, 1, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const int64_t cut = obs::NowMicros();
  FlightRecorder::Record(EventKind::kPoolTask, 0x5151, 2, 0);

  int before = 0, after = 0;
  for (const auto& e : rec.SnapshotSince(cut)) {
    if (e.query != 0x5151) continue;
    (e.a == 1 ? before : after)++;
  }
  EXPECT_EQ(before, 0);
  EXPECT_EQ(after, 1);
}

TEST(FlightRecorderTest, ChromeTraceBuildsQueryAndPipelineSpans) {
  // Synthetic lifecycle: submit/admit/finish plus one pipeline pair.
  std::vector<FlightEvent> events;
  auto add = [&](int64_t ts, EventKind k, uint64_t q, int32_t a, int64_t b,
                 int tid) {
    FlightEvent e;
    e.ts_us = ts;
    e.kind = k;
    e.query = q;
    e.a = a;
    e.b = b;
    e.tid = tid;
    events.push_back(e);
  };
  add(100, EventKind::kQuerySubmit, 42, 1000, 0, 0);
  add(110, EventKind::kQueryAdmit, 42, 1, 10, 1);
  add(120, EventKind::kPipelineStart, 42, 8, 2048, 1);
  add(150, EventKind::kPipelineEnd, 42, 8, 30, 1);
  add(160, EventKind::kQueryFinish, 42, 0, 60, 1);

  const std::string json = FlightRecorder::ToChromeTrace(events);
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(json, &doc, &error)) << error << "\n" << json;
  const JsonValue* trace_events = doc.Find("traceEvents");
  ASSERT_NE(trace_events, nullptr);

  bool query_span = false, pipeline_span = false;
  int instants = 0;
  for (const JsonValue& e : trace_events->AsArray()) {
    const std::string cat = e.GetString("cat", "");
    if (cat == "flight.query" && e.GetString("ph", "") == "X") {
      query_span = true;
      EXPECT_EQ(e.GetDouble("ts", 0), 100);
      EXPECT_EQ(e.GetDouble("dur", 0), 60);
      const JsonValue* args = e.Find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_EQ(args->GetDouble("query", 0), 42);
    }
    if (cat == "flight.pipeline" && e.GetString("ph", "") == "X") {
      pipeline_span = true;
      EXPECT_EQ(e.GetDouble("ts", 0), 120);
      EXPECT_EQ(e.GetDouble("dur", 0), 30);
    }
    if (cat == "flight.event") ++instants;
  }
  EXPECT_TRUE(query_span);
  EXPECT_TRUE(pipeline_span);
  EXPECT_EQ(instants, static_cast<int>(events.size()));

  // JSONL: one parseable object per event, kind names decoded.
  const std::string jsonl = FlightRecorder::ToJsonl(events);
  size_t lines = 0, start = 0;
  while (start < jsonl.size()) {
    size_t end = jsonl.find('\n', start);
    if (end == std::string::npos) end = jsonl.size();
    const std::string line = jsonl.substr(start, end - start);
    if (!line.empty()) {
      ++lines;
      JsonValue v;
      ASSERT_TRUE(JsonValue::Parse(line, &v, &error)) << error;
      EXPECT_NE(v.Find("kind"), nullptr);
      EXPECT_NE(v.Find("ts_us"), nullptr);
    }
    start = end + 1;
  }
  EXPECT_EQ(lines, events.size());
}

TEST(SlowQueryLogTest, BoundedRingAndJsonl) {
  auto& log = flight::SlowQueryLog::Global();
  log.Clear();
  log.set_capacity(4);
  const int64_t total_before = log.total();
  for (int i = 0; i < 10; ++i) {
    flight::SlowQueryEntry e;
    e.ts_us = 1000 + i;
    e.label = "q" + std::to_string(i);
    e.status = "OK";
    e.trigger = "latency";
    e.report.query_id = static_cast<uint64_t>(i + 1);
    e.report.wall_us = 100 + i;
    log.Append(e);
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.total(), total_before + 10);
  const auto snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.front().label, "q6");  // oldest evicted
  EXPECT_EQ(snap.back().label, "q9");

  const std::string jsonl = log.ToJsonl();
  size_t start = 0;
  int lines = 0;
  while (start < jsonl.size()) {
    size_t end = jsonl.find('\n', start);
    if (end == std::string::npos) end = jsonl.size();
    const std::string line = jsonl.substr(start, end - start);
    if (!line.empty()) {
      ++lines;
      JsonValue v;
      std::string error;
      ASSERT_TRUE(JsonValue::Parse(line, &v, &error)) << error;
      for (const char* key : {"ts_us", "query", "label", "status", "trigger",
                              "wall_us", "cpu_us"}) {
        EXPECT_NE(v.Find(key), nullptr) << key;
      }
    }
    start = end + 1;
  }
  EXPECT_EQ(lines, 4);
  log.set_capacity(256);
  log.Clear();
}

TEST(SloTrackerTest, AttainmentAndBurnRate) {
  service::SloOptions opts;
  opts.default_objective_us = 100;
  opts.target = 0.9;
  service::SloTracker slo(opts);
  ASSERT_TRUE(slo.enabled());
  EXPECT_EQ(slo.ObjectiveFor(1.0), 100);

  // 8 met, 2 missed (one slow, one not-OK) -> attainment 0.8, and the
  // error budget (10%) is being burned at 2x.
  for (int i = 0; i < 8; ++i) slo.Record(1.0, true, 50, 1000 + i);
  slo.Record(1.0, true, 200, 1008);
  slo.Record(1.0, false, 10, 1009);
  EXPECT_DOUBLE_EQ(slo.Attainment(1.0), 0.8);
  EXPECT_DOUBLE_EQ(slo.BurnRate(1.0), 2.0);
}

TEST(SloTrackerTest, PerClassObjectivesAndWindowEviction) {
  service::SloOptions opts;
  opts.default_objective_us = 100;
  opts.window_us = 1000;
  opts.per_class_objective_us[2] = 5000;
  service::SloTracker slo(opts);
  EXPECT_EQ(slo.ObjectiveFor(2.4), 5000);  // class = truncated priority
  EXPECT_EQ(slo.ObjectiveFor(1.0), 100);

  slo.Record(1.0, true, 500, 1000);  // miss at t=1000
  EXPECT_DOUBLE_EQ(slo.Attainment(1.0), 0.0);
  // A met query far past the window evicts the old miss.
  slo.Record(1.0, true, 50, 500000);
  EXPECT_DOUBLE_EQ(slo.Attainment(1.0), 1.0);
  EXPECT_DOUBLE_EQ(slo.BurnRate(1.0), 0.0);
}

// End-to-end trigger path: a query over its latency threshold lands in
// the slow-query log and retroactively dumps a parseable Chrome trace
// containing its own lifecycle span.
TEST(ServiceFlightTriggerTest, SlowQueryDumpsRetroactively) {
  FlightRecorder::Global().set_enabled(true);
  auto& log = flight::SlowQueryLog::Global();
  log.Clear();
  const std::string dump = TempPath("wimpi_flight_test_dump.json");
  std::remove(dump.c_str());
  std::remove((dump + ".jsonl").c_str());

  uint64_t query_id = 0;
  {
    service::ServiceOptions opts;
    opts.max_active = 1;
    opts.query_threads = 2;
    opts.morsel_rows = 256;
    opts.flight.latency_threshold_us = 1;  // everything is slow
    opts.flight.dump_path = dump;
    service::QueryService svc(opts);

    service::QuerySpec spec;
    spec.label = "slowish";
    spec.plan = [](exec::QueryStats*) {
      exec::RunMorsels(256 * 4, exec::PlannedThreads(256 * 4),
                       [](const parallel::Morsel&) {
                         std::this_thread::sleep_for(
                             std::chrono::microseconds(500));
                       });
      return exec::Relation();
    };
    service::QueryTicket t = svc.Submit(std::move(spec));
    ASSERT_TRUE(t.Wait().ok());
    query_id = t.query_id();
    ASSERT_GT(query_id, 0u);
  }  // destructor flushes any pending dumps

  // Slow-query log carries the trigger and the resource report.
  bool logged = false;
  for (const auto& e : log.Snapshot()) {
    if (e.report.query_id != query_id) continue;
    logged = true;
    EXPECT_EQ(e.trigger, "latency");
    EXPECT_EQ(e.label, "slowish");
    EXPECT_GT(e.report.wall_us, 0);
    EXPECT_EQ(e.report.cpu_us,
              e.report.driver_cpu_us + e.report.worker_cpu_us);
  }
  EXPECT_TRUE(logged);

  // The retroactive dump exists, parses, and contains this query's span.
  const std::string json = ReadFileOrEmpty(dump);
  ASSERT_FALSE(json.empty()) << dump << " was not written";
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(json, &doc, &error)) << error;
  const JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool found_span = false;
  for (const JsonValue& e : events->AsArray()) {
    if (e.GetString("cat", "") != "flight.query") continue;
    const JsonValue* args = e.Find("args");
    if (args != nullptr &&
        args->GetDouble("query", 0) == static_cast<double>(query_id)) {
      found_span = true;
    }
  }
  EXPECT_TRUE(found_span);

  // The raw JSONL sidecar parses line by line.
  const std::string jsonl = ReadFileOrEmpty(dump + ".jsonl");
  ASSERT_FALSE(jsonl.empty());
  size_t start = 0;
  while (start < jsonl.size()) {
    size_t end = jsonl.find('\n', start);
    if (end == std::string::npos) end = jsonl.size();
    const std::string line = jsonl.substr(start, end - start);
    if (!line.empty()) {
      JsonValue v;
      ASSERT_TRUE(JsonValue::Parse(line, &v, &error)) << error;
    }
    start = end + 1;
  }

  std::remove(dump.c_str());
  std::remove((dump + ".jsonl").c_str());
  log.Clear();
}

}  // namespace
}  // namespace wimpi
