// TPC-H generator tests: cardinalities, determinism, referential
// integrity, and the value distributions the queries depend on.
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/date.h"
#include "common/strings.h"
#include "gtest/gtest.h"
#include "tpch/dbgen.h"

namespace wimpi::tpch {
namespace {

const engine::Database& Db() {
  static engine::Database* db = [] {
    GenOptions opts;
    opts.scale_factor = 0.01;
    return new engine::Database(GenerateDatabase(opts));
  }();
  return *db;
}

TEST(DbgenTest, RowCounts) {
  const RowCounts c = RowCountsFor(0.01);
  EXPECT_EQ(Db().table("supplier").num_rows(), c.supplier);
  EXPECT_EQ(Db().table("part").num_rows(), c.part);
  EXPECT_EQ(Db().table("customer").num_rows(), c.customer);
  EXPECT_EQ(Db().table("orders").num_rows(), c.orders);
  EXPECT_EQ(Db().table("partsupp").num_rows(), c.partsupp);
  EXPECT_EQ(Db().table("nation").num_rows(), 25);
  EXPECT_EQ(Db().table("region").num_rows(), 5);
  // 1..7 lineitems per order.
  EXPECT_GE(Db().table("lineitem").num_rows(), c.orders);
  EXPECT_LE(Db().table("lineitem").num_rows(), 7 * c.orders);
}

TEST(DbgenTest, DeterministicAcrossRuns) {
  GenOptions opts;
  opts.scale_factor = 0.005;
  const engine::Database a = GenerateDatabase(opts);
  const engine::Database b = GenerateDatabase(opts);
  const auto& la = a.table("lineitem");
  const auto& lb = b.table("lineitem");
  ASSERT_EQ(la.num_rows(), lb.num_rows());
  for (int64_t i = 0; i < la.num_rows(); i += 97) {
    EXPECT_EQ(la.column("l_orderkey").I64Data()[i],
              lb.column("l_orderkey").I64Data()[i]);
    EXPECT_EQ(la.column("l_extendedprice").F64Data()[i],
              lb.column("l_extendedprice").F64Data()[i]);
    EXPECT_EQ(la.column("l_comment").I32Data()[i],
              lb.column("l_comment").I32Data()[i]);
  }
}

TEST(DbgenTest, SeedChangesData) {
  GenOptions a, b;
  a.scale_factor = b.scale_factor = 0.005;
  b.seed = a.seed + 1;
  const engine::Database da = GenerateDatabase(a);
  const engine::Database db = GenerateDatabase(b);
  int diff = 0;
  for (int64_t i = 0; i < 100; ++i) {
    diff += da.table("orders").column("o_custkey").I32Data()[i] !=
            db.table("orders").column("o_custkey").I32Data()[i];
  }
  EXPECT_GT(diff, 50);
}

TEST(DbgenTest, LineitemForeignKeysAreValid) {
  const auto& l = Db().table("lineitem");
  const RowCounts c = RowCountsFor(0.01);
  // Every (l_partkey, l_suppkey) must exist in partsupp (Q9 depends on it).
  std::unordered_set<int64_t> ps;
  const auto& pst = Db().table("partsupp");
  for (int64_t i = 0; i < pst.num_rows(); ++i) {
    ps.insert((static_cast<int64_t>(
                   pst.column("ps_partkey").I32Data()[i]) << 32) |
              pst.column("ps_suppkey").I32Data()[i]);
  }
  for (int64_t i = 0; i < l.num_rows(); ++i) {
    const int32_t pk = l.column("l_partkey").I32Data()[i];
    const int32_t sk = l.column("l_suppkey").I32Data()[i];
    ASSERT_GE(pk, 1);
    ASSERT_LE(pk, c.part);
    ASSERT_TRUE(ps.count((static_cast<int64_t>(pk) << 32) | sk))
        << "lineitem row " << i << " has no partsupp (" << pk << "," << sk
        << ")";
  }
}

TEST(DbgenTest, CustomersDivisibleByThreeHaveNoOrders) {
  const auto& o = Db().table("orders");
  for (int64_t i = 0; i < o.num_rows(); ++i) {
    EXPECT_NE(o.column("o_custkey").I32Data()[i] % 3, 0);
  }
}

TEST(DbgenTest, OrderStatusMatchesLineitems) {
  const auto& o = Db().table("orders");
  const auto& l = Db().table("lineitem");
  std::unordered_map<int64_t, std::pair<int, int>> per_order;  // open, total
  for (int64_t i = 0; i < l.num_rows(); ++i) {
    auto& [open, total] = per_order[l.column("l_orderkey").I64Data()[i]];
    open += l.column("l_linestatus").StringAt(i) == "O";
    ++total;
  }
  for (int64_t i = 0; i < o.num_rows(); ++i) {
    const auto [open, total] =
        per_order.at(o.column("o_orderkey").I64Data()[i]);
    const std::string_view status = o.column("o_orderstatus").StringAt(i);
    if (open == 0) {
      EXPECT_EQ(status, "F");
    } else if (open == total) {
      EXPECT_EQ(status, "O");
    } else {
      EXPECT_EQ(status, "P");
    }
  }
}

TEST(DbgenTest, TotalPriceMatchesLineitems) {
  const auto& o = Db().table("orders");
  const auto& l = Db().table("lineitem");
  std::unordered_map<int64_t, double> totals;
  for (int64_t i = 0; i < l.num_rows(); ++i) {
    totals[l.column("l_orderkey").I64Data()[i]] +=
        l.column("l_extendedprice").F64Data()[i] *
        (1 - l.column("l_discount").F64Data()[i]) *
        (1 + l.column("l_tax").F64Data()[i]);
  }
  for (int64_t i = 0; i < o.num_rows(); i += 13) {
    EXPECT_NEAR(o.column("o_totalprice").F64Data()[i],
                totals.at(o.column("o_orderkey").I64Data()[i]), 1e-6);
  }
}

TEST(DbgenTest, DateChainsAreConsistent) {
  const auto& l = Db().table("lineitem");
  const int32_t start = StartDate();
  const int32_t end = EndDate();
  for (int64_t i = 0; i < l.num_rows(); ++i) {
    const int32_t ship = l.column("l_shipdate").I32Data()[i];
    const int32_t receipt = l.column("l_receiptdate").I32Data()[i];
    ASSERT_GT(receipt, ship);
    ASSERT_LE(receipt - ship, 30);
    ASSERT_GE(ship, start);
    ASSERT_LE(receipt, end);
    // Return flags follow the receipt-date rule.
    const std::string_view rf = l.column("l_returnflag").StringAt(i);
    if (receipt <= CurrentDate()) {
      ASSERT_TRUE(rf == "R" || rf == "A");
    } else {
      ASSERT_EQ(rf, "N");
    }
  }
}

TEST(DbgenTest, RetailPriceFormula) {
  EXPECT_DOUBLE_EQ(RetailPrice(1), (90000 + 0 + 100 * 1) / 100.0);
  const auto& p = Db().table("part");
  for (int64_t i = 0; i < p.num_rows(); i += 11) {
    EXPECT_DOUBLE_EQ(p.column("p_retailprice").F64Data()[i],
                     RetailPrice(p.column("p_partkey").I32Data()[i]));
  }
}

TEST(DbgenTest, PartNamesUseFiveDistinctColors) {
  const auto& p = Db().table("part");
  int green = 0, forest_prefix = 0;
  for (int64_t i = 0; i < p.num_rows(); ++i) {
    const auto words = Split(std::string(p.column("p_name").StringAt(i)), ' ');
    EXPECT_EQ(words.size(), 5u);
    EXPECT_EQ(std::set<std::string>(words.begin(), words.end()).size(), 5u);
    green += Contains(p.column("p_name").StringAt(i), "green");
    forest_prefix += StartsWith(p.column("p_name").StringAt(i), "forest");
  }
  // ~5/92 of parts contain "green" somewhere; ~1/92 start with "forest".
  EXPECT_GT(green, p.num_rows() / 40);
  EXPECT_GT(forest_prefix, 0);
}

TEST(DbgenTest, PhoneCountryCodeFollowsNation) {
  const auto& c = Db().table("customer");
  for (int64_t i = 0; i < c.num_rows(); i += 7) {
    const int32_t nk = c.column("c_nationkey").I32Data()[i];
    const std::string_view phone = c.column("c_phone").StringAt(i);
    const int code = (phone[0] - '0') * 10 + (phone[1] - '0');
    EXPECT_EQ(code, 10 + nk);
  }
}

TEST(DbgenTest, NationRegionFixedMapping) {
  const auto& n = Db().table("nation");
  std::map<std::string, int32_t> got;
  for (int64_t i = 0; i < n.num_rows(); ++i) {
    got[std::string(n.column("n_name").StringAt(i))] =
        n.column("n_regionkey").I32Data()[i];
  }
  EXPECT_EQ(got.at("BRAZIL"), 1);    // AMERICA
  EXPECT_EQ(got.at("GERMANY"), 3);   // EUROPE
  EXPECT_EQ(got.at("CHINA"), 2);     // ASIA
  EXPECT_EQ(got.at("SAUDI ARABIA"), 4);
  EXPECT_EQ(got.at("ALGERIA"), 0);
}

TEST(DbgenTest, SupplierForPartGivesFourDistinctSuppliers) {
  for (const int32_t part : {1, 57, 1999}) {
    std::set<int32_t> supps;
    for (int i = 0; i < 4; ++i) {
      const int32_t s = SupplierForPart(part, i, 100);
      EXPECT_GE(s, 1);
      EXPECT_LE(s, 100);
      supps.insert(s);
    }
    EXPECT_EQ(supps.size(), 4u);
  }
}

TEST(DbgenTest, LogicalBytesScaleWithSf) {
  for (const char* t : {"lineitem", "orders", "customer", "partsupp"}) {
    EXPECT_NEAR(LogicalTableBytes(t, 10.0) / LogicalTableBytes(t, 1.0), 10.0,
                0.5);
  }
  EXPECT_GT(LogicalTableBytes("lineitem", 1.0),
            LogicalTableBytes("orders", 1.0));
}

TEST(DbgenTest, UnusedTextSkippedByDefault) {
  // l_comment is empty by default but present with include_unused_text.
  EXPECT_EQ(Db().table("lineitem").column("l_comment").StringAt(0), "");
  GenOptions opts;
  opts.scale_factor = 0.001;
  opts.include_unused_text = true;
  const engine::Database full = GenerateDatabase(opts);
  EXPECT_NE(full.table("lineitem").column("l_comment").StringAt(0), "");
}

}  // namespace
}  // namespace wimpi::tpch
