// Fault-injection and recovery tests: any fault plan that leaves at least
// one live node must yield bit-identical query answers (only modeled time
// may degrade), identical seeds must reproduce identical plans and stats,
// and killing every node must surface kUnavailable instead of aborting.
#include <cstring>

#include "cluster/fault.h"
#include "cluster/recovery.h"
#include "cluster/wimpi_cluster.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace wimpi {
namespace {

constexpr int kNodes = 4;

const engine::Database& TestDb() {
  static engine::Database* db = [] {
    tpch::GenOptions opts;
    opts.scale_factor = 0.02;
    return new engine::Database(tpch::GenerateDatabase(opts));
  }();
  return *db;
}

Result<cluster::DistributedRun> RunWith(int q, cluster::FaultPlan plan) {
  cluster::ClusterOptions opts;
  opts.num_nodes = kNodes;
  opts.faults = std::move(plan);
  const cluster::WimpiCluster wimpi(TestDb(), opts);
  hw::CostModel model;
  return wimpi.Run(q, model);
}

// Bit-exact relation comparison: doubles are compared by bit pattern, not
// tolerance — "bit-identical to the fault-free run" is the contract.
void ExpectBitIdentical(const tpch_ref::RefResult& actual,
                        const tpch_ref::RefResult& expected) {
  ASSERT_EQ(actual.size(), expected.size()) << "row count";
  for (size_t r = 0; r < actual.size(); ++r) {
    ASSERT_EQ(actual[r].size(), expected[r].size()) << "arity at row " << r;
    for (size_t c = 0; c < actual[r].size(); ++c) {
      const auto& a = actual[r][c];
      const auto& e = expected[r][c];
      if (std::holds_alternative<double>(e)) {
        ASSERT_TRUE(std::holds_alternative<double>(a));
        const double av = std::get<double>(a);
        const double ev = std::get<double>(e);
        ASSERT_EQ(std::memcmp(&av, &ev, sizeof(double)), 0)
            << "double bits differ at (" << r << "," << c << "): " << av
            << " vs " << ev;
      } else {
        ASSERT_TRUE(a == e) << "cell (" << r << "," << c << ")";
      }
    }
  }
}

class FaultMatrixTest : public ::testing::TestWithParam<int> {};

TEST_P(FaultMatrixTest, BitIdenticalUnderEveryScenario) {
  const int q = GetParam();
  const auto clean_r = RunWith(q, cluster::FaultPlan{});
  ASSERT_TRUE(clean_r.ok()) << clean_r.status().ToString();
  const cluster::DistributedRun& clean = *clean_r;

  // The zero-fault path must not pay for the recovery machinery.
  EXPECT_EQ(clean.retries, 0);
  EXPECT_EQ(clean.reassigned_partitions, 0);
  EXPECT_EQ(clean.nodes_failed, 0);
  EXPECT_EQ(clean.degraded_seconds, 0.0);
  EXPECT_EQ(static_cast<int>(clean.attempts.size()), clean.nodes_used);
  const auto clean_ref = ToRefResult(clean.result);

  std::vector<std::pair<std::string, cluster::FaultPlan>> scenarios;
  for (int n = 0; n < kNodes; ++n) {
    scenarios.emplace_back("crash node " + std::to_string(n),
                           cluster::FaultPlan::Crash({n}));
  }
  scenarios.emplace_back("crash 3 of 4 nodes",
                         cluster::FaultPlan::Crash({0, 2, 3}));
  scenarios.emplace_back("straggler x8", cluster::FaultPlan::Slowdown(1, 8.0));
  scenarios.emplace_back("network stall",
                         cluster::FaultPlan::NetworkStall(2, 0.5, 2));
  scenarios.emplace_back("transient failure",
                         cluster::FaultPlan::Transient(3, 2));

  for (auto& [name, plan] : scenarios) {
    SCOPED_TRACE(name);
    const auto r = RunWith(q, std::move(plan));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ExpectBitIdentical(ToRefResult(r->result), clean_ref);
    // Faults only ever stretch modeled time.
    EXPECT_GE(r->total_seconds, clean.total_seconds);
    EXPECT_GE(r->degraded_seconds, 0.0);
    // Network / merge cost is unaffected: the same partials cross the wire.
    EXPECT_EQ(r->network_bytes, clean.network_bytes);
    EXPECT_EQ(r->network_seconds, clean.network_seconds);
    EXPECT_EQ(r->merge_seconds, clean.merge_seconds);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sf10Subset, FaultMatrixTest,
    ::testing::ValuesIn(std::vector<int>(
        tpch::kSf10Queries, tpch::kSf10Queries + tpch::kNumSf10Queries)),
    [](const ::testing::TestParamInfo<int>& info) {
      return "Q" + std::to_string(info.param);
    });

TEST(FaultRecoveryTest, CrashedPartitionIsReassigned) {
  const auto r = RunWith(1, cluster::FaultPlan::Crash({0}));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->nodes_failed, 1);
  EXPECT_GE(r->reassigned_partitions, 1);
  EXPECT_GE(r->retries, 1);
  EXPECT_GT(r->degraded_seconds, 0.0);
  // The timeline records the failed attempt on node 0 and the successful
  // rerun elsewhere.
  bool saw_failure = false, saw_rerun = false;
  for (const auto& a : r->attempts) {
    if (a.node == 0 && a.outcome == StatusCode::kUnavailable) {
      saw_failure = true;
    }
    if (a.partition == 0 && a.node != 0 && a.outcome == StatusCode::kOk) {
      saw_rerun = true;
    }
  }
  EXPECT_TRUE(saw_failure);
  EXPECT_TRUE(saw_rerun);
}

TEST(FaultRecoveryTest, MoreCrashesNeverSpeedThingsUp) {
  // Nested crash sets: each superset must cost at least as much modeled
  // time as its subset (survivors absorb strictly more work).
  double prev = 0.0;
  for (const auto& nodes :
       {std::vector<int>{}, {0}, {0, 2}, {0, 2, 3}}) {
    const auto r = RunWith(1, cluster::FaultPlan::Crash(nodes));
    ASSERT_TRUE(r.ok()) << nodes.size() << " crashes";
    EXPECT_GE(r->total_seconds, prev) << nodes.size() << " crashes";
    prev = r->total_seconds;
  }
}

TEST(FaultRecoveryTest, AllNodesCrashedIsUnavailable) {
  const auto r = RunWith(1, cluster::FaultPlan::Crash({0, 1, 2, 3}));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(r.status().message().find("every node failed"),
            std::string::npos);
}

TEST(FaultRecoveryTest, StragglerEventuallyCompletesWithoutReassignTarget) {
  // Every node slowed: no faster node exists, so after enough bounced
  // attempts the driver must accept straggler runs and still finish.
  cluster::FaultPlan plan;
  for (int n = 0; n < kNodes; ++n) {
    auto one = cluster::FaultPlan::Slowdown(n, 32.0);
    plan.faults.push_back(one.faults[0]);
  }
  const auto clean = RunWith(6, cluster::FaultPlan{});
  ASSERT_TRUE(clean.ok());
  const auto r = RunWith(6, std::move(plan));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ExpectBitIdentical(ToRefResult(r->result), ToRefResult(clean->result));
  EXPECT_GT(r->total_seconds, clean->total_seconds);
}

TEST(FaultPlanTest, SameSeedSamePlan) {
  for (const uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
    const auto a = cluster::FaultPlan::Generate(seed, 24);
    const auto b = cluster::FaultPlan::Generate(seed, 24);
    ASSERT_EQ(a.faults.size(), b.faults.size()) << seed;
    EXPECT_EQ(a.seed, seed);
    for (size_t i = 0; i < a.faults.size(); ++i) {
      EXPECT_EQ(a.faults[i].node, b.faults[i].node);
      EXPECT_EQ(a.faults[i].kind, b.faults[i].kind);
      EXPECT_EQ(a.faults[i].slowdown, b.faults[i].slowdown);
      EXPECT_EQ(a.faults[i].stall_seconds, b.faults[i].stall_seconds);
      EXPECT_EQ(a.faults[i].fail_attempts, b.faults[i].fail_attempts);
    }
    EXPECT_EQ(a.ToString(), b.ToString());
  }
}

TEST(FaultPlanTest, GeneratedPlansAreRecoverableAndBounded) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    const auto plan = cluster::FaultPlan::Generate(seed, kNodes);
    ASSERT_FALSE(plan.empty()) << seed;
    int crashes = 0;
    for (const auto& f : plan.faults) {
      EXPECT_GE(f.node, 0);
      EXPECT_LT(f.node, kNodes);
      if (f.kind == cluster::FaultKind::kCrash) ++crashes;
    }
    EXPECT_LT(crashes, kNodes) << "seed " << seed << " kills every node";
  }
}

TEST(FaultPlanTest, SameSeedSameDistributedRunStats) {
  const auto plan = cluster::FaultPlan::Generate(7, kNodes);
  const auto a = RunWith(3, plan);
  const auto b = RunWith(3, plan);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->total_seconds, b->total_seconds);
  EXPECT_EQ(a->max_node_seconds, b->max_node_seconds);
  EXPECT_EQ(a->degraded_seconds, b->degraded_seconds);
  EXPECT_EQ(a->retries, b->retries);
  EXPECT_EQ(a->reassigned_partitions, b->reassigned_partitions);
  EXPECT_EQ(a->nodes_failed, b->nodes_failed);
  ASSERT_EQ(a->attempts.size(), b->attempts.size());
  for (size_t i = 0; i < a->attempts.size(); ++i) {
    EXPECT_EQ(a->attempts[i].partition, b->attempts[i].partition);
    EXPECT_EQ(a->attempts[i].node, b->attempts[i].node);
    EXPECT_EQ(a->attempts[i].attempt, b->attempts[i].attempt);
    EXPECT_EQ(a->attempts[i].start_seconds, b->attempts[i].start_seconds);
    EXPECT_EQ(a->attempts[i].end_seconds, b->attempts[i].end_seconds);
    EXPECT_EQ(a->attempts[i].outcome, b->attempts[i].outcome);
  }
  ExpectBitIdentical(ToRefResult(a->result), ToRefResult(b->result));
}

TEST(FaultPlanTest, GeneratedPlanRunsBitIdentical) {
  // End-to-end over a seed-derived plan (what `--faults <seed>` does).
  const auto clean = RunWith(19, cluster::FaultPlan{});
  ASSERT_TRUE(clean.ok());
  const auto r = RunWith(19, cluster::FaultPlan::Generate(42, kNodes));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ExpectBitIdentical(ToRefResult(r->result), ToRefResult(clean->result));
  EXPECT_GE(r->total_seconds, clean->total_seconds);
}

TEST(RetryBudgetTest, AdversarialPlanExhaustsDeterministically) {
  // Every node transiently failing far past the budget: the run must stop
  // with kUnavailable instead of bouncing partitions for thousands of
  // modeled attempts — and do so identically on every execution.
  cluster::FaultPlan plan;
  for (int n = 0; n < kNodes; ++n) {
    auto one = cluster::FaultPlan::Transient(n, 1000000);
    plan.faults.push_back(one.faults[0]);
  }
  const auto a = RunWith(1, plan);
  ASSERT_FALSE(a.ok());
  EXPECT_EQ(a.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(a.status().message().find("retry budget"), std::string::npos);
  const auto b = RunWith(1, plan);
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(a.status().ToString(), b.status().ToString());
}

TEST(RetryBudgetTest, ExplicitBudgetIsHonoured) {
  cluster::ClusterOptions opts;
  opts.num_nodes = kNodes;
  opts.faults = cluster::FaultPlan::Transient(0, 1000000);
  opts.retry_budget = 2;
  const cluster::WimpiCluster wimpi(TestDb(), opts);
  hw::CostModel model;
  const auto r = wimpi.Run(1, model);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(r.status().message().find("retry budget (2)"),
            std::string::npos);
}

// ---- fine-grained recovery (DESIGN.md §14) ----

// Model SF-1 on the physically tiny SF-0.02 database (sf_scale = 50, the
// benches' trick): per-morsel modeled work then dwarfs the 2 ms checkpoint
// round trip, so stragglers genuinely fall behind and theft is worth it.
// At sf_scale = 1 every partition collapses to near-zero modeled work and
// the machinery under test would never trigger.
cluster::ClusterOptions FineOptions(cluster::FaultPlan plan,
                                    cluster::ResizePlan resize = {}) {
  cluster::ClusterOptions opts;
  opts.num_nodes = kNodes;
  opts.sf_scale = 50.0;
  opts.faults = std::move(plan);
  opts.resize = std::move(resize);
  opts.recovery.mode = cluster::RecoveryMode::kFineGrained;
  opts.recovery.checkpoint_interval = 2;
  return opts;
}

Result<cluster::DistributedRun> RunFine(int q, cluster::FaultPlan plan,
                                        cluster::ResizePlan resize = {}) {
  const cluster::WimpiCluster wimpi(TestDb(), FineOptions(std::move(plan),
                                                          std::move(resize)));
  hw::CostModel model;
  return wimpi.Run(q, model);
}

class FineMatrixTest : public ::testing::TestWithParam<int> {};

TEST_P(FineMatrixTest, BitIdenticalAtAnyStealSchedule) {
  const int q = GetParam();
  // Ground truth: the whole-partition retry mode's clean answer.
  const auto retry_clean = RunWith(q, cluster::FaultPlan{});
  ASSERT_TRUE(retry_clean.ok()) << retry_clean.status().ToString();
  const auto truth = ToRefResult(retry_clean->result);

  const auto clean_r = RunFine(q, cluster::FaultPlan{});
  ASSERT_TRUE(clean_r.ok()) << clean_r.status().ToString();
  const cluster::DistributedRun& clean = *clean_r;
  ExpectBitIdentical(ToRefResult(clean.result), truth);
  EXPECT_GT(clean.total_morsels, 0);
  EXPECT_GT(clean.checkpoints, 0);
  EXPECT_EQ(clean.recovered_morsels, 0);
  EXPECT_EQ(clean.nodes_failed, 0);
  EXPECT_EQ(clean.degraded_seconds, 0.0);

  std::vector<std::pair<std::string, cluster::ClusterOptions>> scenarios;
  scenarios.emplace_back("crash node 0",
                         FineOptions(cluster::FaultPlan::Crash({0})));
  scenarios.emplace_back("crash 3 of 4",
                         FineOptions(cluster::FaultPlan::Crash({0, 2, 3})));
  scenarios.emplace_back("straggler x8",
                         FineOptions(cluster::FaultPlan::Slowdown(1, 8.0)));
  scenarios.emplace_back(
      "network stall",
      FineOptions(cluster::FaultPlan::NetworkStall(2, 0.5, 2)));
  scenarios.emplace_back("transient failure",
                         FineOptions(cluster::FaultPlan::Transient(3, 2)));
  scenarios.emplace_back("join mid-run",
                         FineOptions(cluster::FaultPlan{},
                                     cluster::ResizePlan::Join(0.3)));
  scenarios.emplace_back("leave mid-run",
                         FineOptions(cluster::FaultPlan{},
                                     cluster::ResizePlan::Leave(2, 0.4)));
  scenarios.emplace_back(
      "crash + resize",
      FineOptions(cluster::FaultPlan::Crash({1}),
                  cluster::ResizePlan::Join(0.2)));
  {
    auto no_steal = FineOptions(cluster::FaultPlan::Slowdown(0, 8.0));
    no_steal.recovery.steal = false;
    scenarios.emplace_back("checkpoint-only (steal off)",
                           std::move(no_steal));
  }

  for (auto& [name, opts] : scenarios) {
    SCOPED_TRACE(name);
    const cluster::WimpiCluster wimpi(TestDb(), opts);
    hw::CostModel model;
    const auto r = wimpi.Run(q, model);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ExpectBitIdentical(ToRefResult(r->result), truth);
    EXPECT_EQ(r->total_morsels, clean.total_morsels);
    // Every morsel is acknowledged by exactly one checkpoint publish, so
    // the publish count can only grow with losses, never shrink below the
    // clean count... and stealing never disables checkpointing.
    EXPECT_GT(r->checkpoints, 0);
    if (!opts.recovery.steal) EXPECT_EQ(r->steals, 0);
    // Network / merge cost is unaffected: the same partials cross the
    // wire whatever the morsel schedule was.
    EXPECT_EQ(r->network_bytes, clean.network_bytes);
    EXPECT_EQ(r->merge_seconds, clean.merge_seconds);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sf10Subset, FineMatrixTest,
    ::testing::ValuesIn(std::vector<int>(
        tpch::kSf10Queries, tpch::kSf10Queries + tpch::kNumSf10Queries)),
    [](const ::testing::TestParamInfo<int>& info) {
      return "Q" + std::to_string(info.param);
    });

TEST(FineRecoveryTest, CrashDuringStolenRangeExecution) {
  // Q13 does not fan out: all its morsels start on node 0 and every other
  // node's work is stolen. Node 1's only possible work is stolen work, and
  // its crash trigger (half an average share of lifetime morsels) fires
  // while it executes a stolen range — the crash-during-steal case. The
  // orphaned remainder must be re-claimed and the answer stay exact.
  const auto clean = RunFine(13, cluster::FaultPlan{});
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_GT(clean->steals, 0) << "Q13 fine mode should parallelize by theft";
  const auto r = RunFine(13, cluster::FaultPlan::Crash({1}));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ExpectBitIdentical(ToRefResult(r->result), ToRefResult(clean->result));
  EXPECT_EQ(r->nodes_failed, 1);
  bool crashed_while_stealing = false;
  for (const auto& a : r->attempts) {
    if (a.node == 1 && a.stolen) crashed_while_stealing = true;
  }
  EXPECT_TRUE(crashed_while_stealing);
}

TEST(FineRecoveryTest, StragglerIsVictimizedRepeatedly) {
  // One node 8x slow in a fan-out query: the fast nodes finish, steal half
  // the straggler's remainder, finish that, and come back for more.
  const auto r = RunFine(6, cluster::FaultPlan::Slowdown(0, 8.0));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  int thefts_from_straggler = 0;
  for (const auto& s : r->steal_log) {
    if (s.victim == 0) ++thefts_from_straggler;
  }
  EXPECT_GE(thefts_from_straggler, 2)
      << "straggler should be re-victimized as it stays slowest";
  EXPECT_GT(r->stolen_morsels, 0);
}

TEST(FineRecoveryTest, ResizeArrivingMidRecovery) {
  // A node crashes, another leaves gracefully, and a fresh node joins
  // while the crash recovery is still in flight. The same checkpoint /
  // steal machinery absorbs all three.
  cluster::ResizePlan resize;
  resize.events.push_back({0.2, -1, true});  // join early
  resize.events.push_back({0.5, 2, false});  // node 2 leaves mid-run
  const auto clean = RunFine(1, cluster::FaultPlan{});
  ASSERT_TRUE(clean.ok());
  const auto r = RunFine(1, cluster::FaultPlan::Crash({1}), resize);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ExpectBitIdentical(ToRefResult(r->result), ToRefResult(clean->result));
  EXPECT_EQ(r->joins, 1);
  EXPECT_EQ(r->leaves, 1);
  EXPECT_EQ(r->nodes_failed, 1);
  bool joiner_worked = false;
  for (const auto& a : r->attempts) {
    if (a.node >= kNodes) joiner_worked = true;
  }
  EXPECT_TRUE(joiner_worked) << "the joining node should pick up work";
}

TEST(FineRecoveryTest, SameInputsSameSchedule) {
  const auto plan = cluster::FaultPlan::Generate(11, kNodes);
  const auto resize = cluster::ResizePlan::Generate(11, kNodes);
  const auto a = RunFine(3, plan, resize);
  const auto b = RunFine(3, plan, resize);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->total_seconds, b->total_seconds);
  EXPECT_EQ(a->max_node_seconds, b->max_node_seconds);
  EXPECT_EQ(a->steals, b->steals);
  EXPECT_EQ(a->stolen_morsels, b->stolen_morsels);
  EXPECT_EQ(a->checkpoints, b->checkpoints);
  EXPECT_EQ(a->checkpoint_bytes, b->checkpoint_bytes);
  EXPECT_EQ(a->recovered_morsels, b->recovered_morsels);
  ASSERT_EQ(a->attempts.size(), b->attempts.size());
  for (size_t i = 0; i < a->attempts.size(); ++i) {
    EXPECT_EQ(a->attempts[i].node, b->attempts[i].node);
    EXPECT_EQ(a->attempts[i].morsel_begin, b->attempts[i].morsel_begin);
    EXPECT_EQ(a->attempts[i].morsel_end, b->attempts[i].morsel_end);
    EXPECT_EQ(a->attempts[i].start_seconds, b->attempts[i].start_seconds);
    EXPECT_EQ(a->attempts[i].stolen, b->attempts[i].stolen);
  }
  ExpectBitIdentical(ToRefResult(a->result), ToRefResult(b->result));
}

TEST(FineRecoveryTest, MiniChaosSweepStaysExact) {
  // The in-process miniature of bench_chaos: seed-derived fault and resize
  // plans together, rotating over the distributed subset.
  const auto qs = std::vector<int>(
      tpch::kSf10Queries, tpch::kSf10Queries + tpch::kNumSf10Queries);
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    const int q = qs[seed % qs.size()];
    SCOPED_TRACE("seed " + std::to_string(seed) + " Q" + std::to_string(q));
    const auto clean = RunFine(q, cluster::FaultPlan{});
    ASSERT_TRUE(clean.ok());
    const auto r = RunFine(q, cluster::FaultPlan::Generate(seed, kNodes),
                           cluster::ResizePlan::Generate(seed, kNodes));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ExpectBitIdentical(ToRefResult(r->result), ToRefResult(clean->result));
  }
}

// ---- the modeled scheduler in isolation (synthetic inputs) ----

cluster::FineInputs SyntheticInputs() {
  cluster::FineInputs in;
  in.pool_nodes = 4;
  for (int p = 0; p < 4; ++p) {
    in.work_s.push_back(1.0 + 0.1 * p);
    in.spill_s.push_back(0.0);
    in.morsels.push_back(16);
    in.partial_bytes.push_back(4096.0);
  }
  in.opts.mode = cluster::RecoveryMode::kFineGrained;
  in.opts.checkpoint_interval = 4;
  return in;
}

// The §14 checkpoint boundary rule: every morsel is acknowledged by
// exactly one checkpoint publish, so per partition the published morsels
// sum to the partition's morsel count — under any fault or resize plan.
void ExpectCheckpointInvariant(const cluster::FineSchedule& s,
                               const cluster::FineInputs& in) {
  std::vector<int> acked(in.morsels.size(), 0);
  for (const auto& ck : s.checkpoints) acked[ck.partition] += ck.morsels;
  for (size_t p = 0; p < in.morsels.size(); ++p) {
    EXPECT_EQ(acked[p], in.morsels[p]) << "partition " << p;
  }
  // OK segments tile each partition exactly: no morsel executed twice
  // successfully, none missing.
  for (size_t p = 0; p < in.morsels.size(); ++p) {
    std::vector<int> covered(in.morsels[p], 0);
    for (const auto& seg : s.segments) {
      if (seg.partition != static_cast<int>(p)) continue;
      if (seg.outcome != StatusCode::kOk) continue;
      for (int m = seg.begin; m < seg.end; ++m) ++covered[m];
    }
    for (int m = 0; m < in.morsels[p]; ++m) {
      EXPECT_EQ(covered[m], 1) << "partition " << p << " morsel " << m;
    }
  }
}

TEST(FineScheduleTest, CheckpointInvariantUnderChaos) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    cluster::FineInputs in = SyntheticInputs();
    const auto faults = cluster::FaultPlan::Generate(seed, in.pool_nodes);
    const auto resize = cluster::ResizePlan::Generate(seed, in.pool_nodes);
    in.faults = &faults;
    in.resize = &resize;
    const auto s = cluster::SimulateFineGrained(in);
    ASSERT_TRUE(s.completed);
    ExpectCheckpointInvariant(s, in);
  }
}

TEST(FineScheduleTest, StealingShortensTheStragglerTail) {
  cluster::FineInputs in = SyntheticInputs();
  const auto slow = cluster::FaultPlan::Slowdown(0, 8.0);
  in.faults = &slow;
  const auto with_steal = cluster::SimulateFineGrained(in);
  in.opts.steal = false;
  const auto without = cluster::SimulateFineGrained(in);
  ASSERT_TRUE(with_steal.completed);
  ASSERT_TRUE(without.completed);
  EXPECT_GT(with_steal.stolen_morsels, 0);
  EXPECT_EQ(without.stolen_morsels, 0);
  // This is the point of the tentpole: theft beats waiting out an 8x
  // straggler by a wide margin.
  EXPECT_LT(with_steal.makespan_s, 0.7 * without.makespan_s);
  ExpectCheckpointInvariant(with_steal, in);
  ExpectCheckpointInvariant(without, in);
}

TEST(FineScheduleTest, CrashLosesOnlyUncheckpointedMorsels) {
  cluster::FineInputs in = SyntheticInputs();
  const auto crash = cluster::FaultPlan::Crash({0});
  in.faults = &crash;
  const auto s = cluster::SimulateFineGrained(in);
  ASSERT_TRUE(s.completed);
  EXPECT_EQ(s.nodes_failed, 1);
  // With interval 4, at most interval un-acknowledged morsels can be in
  // flight when the crash lands — the whole-partition retry path would
  // have re-executed all 16.
  EXPECT_GT(s.recovered_morsels, 0);
  EXPECT_LE(s.recovered_morsels, in.opts.checkpoint_interval);
  ExpectCheckpointInvariant(s, in);
}

TEST(FineScheduleTest, UnrecoverableWhenEveryoneDies) {
  cluster::FineInputs in = SyntheticInputs();
  const auto all = cluster::FaultPlan::Crash({0, 1, 2, 3});
  in.faults = &all;
  const auto s = cluster::SimulateFineGrained(in);
  EXPECT_FALSE(s.completed);
  // ...unless a joiner arrives to pick up the pieces.
  const auto rescue = cluster::ResizePlan::Join(0.6);
  in.resize = &rescue;
  const auto saved = cluster::SimulateFineGrained(in);
  EXPECT_TRUE(saved.completed);
  EXPECT_EQ(saved.joins, 1);
  ExpectCheckpointInvariant(saved, in);
}

}  // namespace
}  // namespace wimpi
