// Fault-injection and recovery tests: any fault plan that leaves at least
// one live node must yield bit-identical query answers (only modeled time
// may degrade), identical seeds must reproduce identical plans and stats,
// and killing every node must surface kUnavailable instead of aborting.
#include <cstring>

#include "cluster/fault.h"
#include "cluster/wimpi_cluster.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace wimpi {
namespace {

constexpr int kNodes = 4;

const engine::Database& TestDb() {
  static engine::Database* db = [] {
    tpch::GenOptions opts;
    opts.scale_factor = 0.02;
    return new engine::Database(tpch::GenerateDatabase(opts));
  }();
  return *db;
}

Result<cluster::DistributedRun> RunWith(int q, cluster::FaultPlan plan) {
  cluster::ClusterOptions opts;
  opts.num_nodes = kNodes;
  opts.faults = std::move(plan);
  const cluster::WimpiCluster wimpi(TestDb(), opts);
  hw::CostModel model;
  return wimpi.Run(q, model);
}

// Bit-exact relation comparison: doubles are compared by bit pattern, not
// tolerance — "bit-identical to the fault-free run" is the contract.
void ExpectBitIdentical(const tpch_ref::RefResult& actual,
                        const tpch_ref::RefResult& expected) {
  ASSERT_EQ(actual.size(), expected.size()) << "row count";
  for (size_t r = 0; r < actual.size(); ++r) {
    ASSERT_EQ(actual[r].size(), expected[r].size()) << "arity at row " << r;
    for (size_t c = 0; c < actual[r].size(); ++c) {
      const auto& a = actual[r][c];
      const auto& e = expected[r][c];
      if (std::holds_alternative<double>(e)) {
        ASSERT_TRUE(std::holds_alternative<double>(a));
        const double av = std::get<double>(a);
        const double ev = std::get<double>(e);
        ASSERT_EQ(std::memcmp(&av, &ev, sizeof(double)), 0)
            << "double bits differ at (" << r << "," << c << "): " << av
            << " vs " << ev;
      } else {
        ASSERT_TRUE(a == e) << "cell (" << r << "," << c << ")";
      }
    }
  }
}

class FaultMatrixTest : public ::testing::TestWithParam<int> {};

TEST_P(FaultMatrixTest, BitIdenticalUnderEveryScenario) {
  const int q = GetParam();
  const auto clean_r = RunWith(q, cluster::FaultPlan{});
  ASSERT_TRUE(clean_r.ok()) << clean_r.status().ToString();
  const cluster::DistributedRun& clean = *clean_r;

  // The zero-fault path must not pay for the recovery machinery.
  EXPECT_EQ(clean.retries, 0);
  EXPECT_EQ(clean.reassigned_partitions, 0);
  EXPECT_EQ(clean.nodes_failed, 0);
  EXPECT_EQ(clean.degraded_seconds, 0.0);
  EXPECT_EQ(static_cast<int>(clean.attempts.size()), clean.nodes_used);
  const auto clean_ref = ToRefResult(clean.result);

  std::vector<std::pair<std::string, cluster::FaultPlan>> scenarios;
  for (int n = 0; n < kNodes; ++n) {
    scenarios.emplace_back("crash node " + std::to_string(n),
                           cluster::FaultPlan::Crash({n}));
  }
  scenarios.emplace_back("crash 3 of 4 nodes",
                         cluster::FaultPlan::Crash({0, 2, 3}));
  scenarios.emplace_back("straggler x8", cluster::FaultPlan::Slowdown(1, 8.0));
  scenarios.emplace_back("network stall",
                         cluster::FaultPlan::NetworkStall(2, 0.5, 2));
  scenarios.emplace_back("transient failure",
                         cluster::FaultPlan::Transient(3, 2));

  for (auto& [name, plan] : scenarios) {
    SCOPED_TRACE(name);
    const auto r = RunWith(q, std::move(plan));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ExpectBitIdentical(ToRefResult(r->result), clean_ref);
    // Faults only ever stretch modeled time.
    EXPECT_GE(r->total_seconds, clean.total_seconds);
    EXPECT_GE(r->degraded_seconds, 0.0);
    // Network / merge cost is unaffected: the same partials cross the wire.
    EXPECT_EQ(r->network_bytes, clean.network_bytes);
    EXPECT_EQ(r->network_seconds, clean.network_seconds);
    EXPECT_EQ(r->merge_seconds, clean.merge_seconds);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sf10Subset, FaultMatrixTest,
    ::testing::ValuesIn(std::vector<int>(
        tpch::kSf10Queries, tpch::kSf10Queries + tpch::kNumSf10Queries)),
    [](const ::testing::TestParamInfo<int>& info) {
      return "Q" + std::to_string(info.param);
    });

TEST(FaultRecoveryTest, CrashedPartitionIsReassigned) {
  const auto r = RunWith(1, cluster::FaultPlan::Crash({0}));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->nodes_failed, 1);
  EXPECT_GE(r->reassigned_partitions, 1);
  EXPECT_GE(r->retries, 1);
  EXPECT_GT(r->degraded_seconds, 0.0);
  // The timeline records the failed attempt on node 0 and the successful
  // rerun elsewhere.
  bool saw_failure = false, saw_rerun = false;
  for (const auto& a : r->attempts) {
    if (a.node == 0 && a.outcome == StatusCode::kUnavailable) {
      saw_failure = true;
    }
    if (a.partition == 0 && a.node != 0 && a.outcome == StatusCode::kOk) {
      saw_rerun = true;
    }
  }
  EXPECT_TRUE(saw_failure);
  EXPECT_TRUE(saw_rerun);
}

TEST(FaultRecoveryTest, MoreCrashesNeverSpeedThingsUp) {
  // Nested crash sets: each superset must cost at least as much modeled
  // time as its subset (survivors absorb strictly more work).
  double prev = 0.0;
  for (const auto& nodes :
       {std::vector<int>{}, {0}, {0, 2}, {0, 2, 3}}) {
    const auto r = RunWith(1, cluster::FaultPlan::Crash(nodes));
    ASSERT_TRUE(r.ok()) << nodes.size() << " crashes";
    EXPECT_GE(r->total_seconds, prev) << nodes.size() << " crashes";
    prev = r->total_seconds;
  }
}

TEST(FaultRecoveryTest, AllNodesCrashedIsUnavailable) {
  const auto r = RunWith(1, cluster::FaultPlan::Crash({0, 1, 2, 3}));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(r.status().message().find("every node failed"),
            std::string::npos);
}

TEST(FaultRecoveryTest, StragglerEventuallyCompletesWithoutReassignTarget) {
  // Every node slowed: no faster node exists, so after enough bounced
  // attempts the driver must accept straggler runs and still finish.
  cluster::FaultPlan plan;
  for (int n = 0; n < kNodes; ++n) {
    auto one = cluster::FaultPlan::Slowdown(n, 32.0);
    plan.faults.push_back(one.faults[0]);
  }
  const auto clean = RunWith(6, cluster::FaultPlan{});
  ASSERT_TRUE(clean.ok());
  const auto r = RunWith(6, std::move(plan));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ExpectBitIdentical(ToRefResult(r->result), ToRefResult(clean->result));
  EXPECT_GT(r->total_seconds, clean->total_seconds);
}

TEST(FaultPlanTest, SameSeedSamePlan) {
  for (const uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
    const auto a = cluster::FaultPlan::Generate(seed, 24);
    const auto b = cluster::FaultPlan::Generate(seed, 24);
    ASSERT_EQ(a.faults.size(), b.faults.size()) << seed;
    EXPECT_EQ(a.seed, seed);
    for (size_t i = 0; i < a.faults.size(); ++i) {
      EXPECT_EQ(a.faults[i].node, b.faults[i].node);
      EXPECT_EQ(a.faults[i].kind, b.faults[i].kind);
      EXPECT_EQ(a.faults[i].slowdown, b.faults[i].slowdown);
      EXPECT_EQ(a.faults[i].stall_seconds, b.faults[i].stall_seconds);
      EXPECT_EQ(a.faults[i].fail_attempts, b.faults[i].fail_attempts);
    }
    EXPECT_EQ(a.ToString(), b.ToString());
  }
}

TEST(FaultPlanTest, GeneratedPlansAreRecoverableAndBounded) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    const auto plan = cluster::FaultPlan::Generate(seed, kNodes);
    ASSERT_FALSE(plan.empty()) << seed;
    int crashes = 0;
    for (const auto& f : plan.faults) {
      EXPECT_GE(f.node, 0);
      EXPECT_LT(f.node, kNodes);
      if (f.kind == cluster::FaultKind::kCrash) ++crashes;
    }
    EXPECT_LT(crashes, kNodes) << "seed " << seed << " kills every node";
  }
}

TEST(FaultPlanTest, SameSeedSameDistributedRunStats) {
  const auto plan = cluster::FaultPlan::Generate(7, kNodes);
  const auto a = RunWith(3, plan);
  const auto b = RunWith(3, plan);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->total_seconds, b->total_seconds);
  EXPECT_EQ(a->max_node_seconds, b->max_node_seconds);
  EXPECT_EQ(a->degraded_seconds, b->degraded_seconds);
  EXPECT_EQ(a->retries, b->retries);
  EXPECT_EQ(a->reassigned_partitions, b->reassigned_partitions);
  EXPECT_EQ(a->nodes_failed, b->nodes_failed);
  ASSERT_EQ(a->attempts.size(), b->attempts.size());
  for (size_t i = 0; i < a->attempts.size(); ++i) {
    EXPECT_EQ(a->attempts[i].partition, b->attempts[i].partition);
    EXPECT_EQ(a->attempts[i].node, b->attempts[i].node);
    EXPECT_EQ(a->attempts[i].attempt, b->attempts[i].attempt);
    EXPECT_EQ(a->attempts[i].start_seconds, b->attempts[i].start_seconds);
    EXPECT_EQ(a->attempts[i].end_seconds, b->attempts[i].end_seconds);
    EXPECT_EQ(a->attempts[i].outcome, b->attempts[i].outcome);
  }
  ExpectBitIdentical(ToRefResult(a->result), ToRefResult(b->result));
}

TEST(FaultPlanTest, GeneratedPlanRunsBitIdentical) {
  // End-to-end over a seed-derived plan (what `--faults <seed>` does).
  const auto clean = RunWith(19, cluster::FaultPlan{});
  ASSERT_TRUE(clean.ok());
  const auto r = RunWith(19, cluster::FaultPlan::Generate(42, kNodes));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ExpectBitIdentical(ToRefResult(r->result), ToRefResult(clean->result));
  EXPECT_GE(r->total_seconds, clean->total_seconds);
}

}  // namespace
}  // namespace wimpi
