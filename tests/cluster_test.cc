// Distributed-correctness and cluster-simulation tests: the WIMPI driver
// must produce exactly the single-node answer at every cluster size, and
// the timing model must show the paper's qualitative effects.
#include "cluster/partition.h"
#include "cluster/wimpi_cluster.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace wimpi {
namespace {

const engine::Database& TestDb() {
  static engine::Database* db = [] {
    tpch::GenOptions opts;
    opts.scale_factor = 0.02;
    return new engine::Database(tpch::GenerateDatabase(opts));
  }();
  return *db;
}

class DistributedQueryTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DistributedQueryTest, MatchesSingleNode) {
  const auto [q, nodes] = GetParam();
  cluster::ClusterOptions opts;
  opts.num_nodes = nodes;
  const cluster::WimpiCluster wimpi(TestDb(), opts);

  hw::CostModel model;
  const auto r = wimpi.Run(q, model);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const cluster::DistributedRun& run = *r;

  exec::QueryStats stats;
  const exec::Relation expected = tpch::RunQuery(q, TestDb(), &stats);
  ExpectRefResultsEqual(ToRefResult(run.result), ToRefResult(expected));

  EXPECT_GT(run.total_seconds, 0.0);
  EXPECT_EQ(run.nodes_used, q == 13 ? 1 : nodes);
  if (q != 13) {
    EXPECT_GT(run.network_bytes, 0.0);
    EXPECT_GT(run.network_seconds, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sf10Subset, DistributedQueryTest,
    ::testing::Combine(::testing::ValuesIn(std::vector<int>(
                           tpch::kSf10Queries,
                           tpch::kSf10Queries + tpch::kNumSf10Queries)),
                       ::testing::Values(2, 3, 5)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "Q" + std::to_string(std::get<0>(info.param)) + "_N" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ClusterApiTest, UnsupportedQueryIsInvalidArgument) {
  // Queries outside the distributed subset must come back as a Status, not
  // a process abort.
  cluster::ClusterOptions opts;
  opts.num_nodes = 2;
  const cluster::WimpiCluster wimpi(TestDb(), opts);
  hw::CostModel model;
  for (const int q : {0, 2, 7, 22, 99}) {
    const auto r = wimpi.Run(q, model);
    ASSERT_FALSE(r.ok()) << "Q" << q;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << "Q" << q;
  }
}

TEST(PartitionTest, RowsArePreservedAndDisjoint) {
  const auto& lineitem = TestDb().table("lineitem");
  const auto parts = cluster::PartitionByKey(lineitem, "l_orderkey", 7);
  int64_t total = 0;
  for (const auto& p : parts) total += p->num_rows();
  EXPECT_EQ(total, lineitem.num_rows());

  // Each order key lands on exactly one partition.
  std::map<int64_t, int> owner;
  for (size_t i = 0; i < parts.size(); ++i) {
    const int64_t* keys = parts[i]->column("l_orderkey").I64Data();
    for (int64_t r = 0; r < parts[i]->num_rows(); ++r) {
      auto [it, inserted] = owner.emplace(keys[r], i);
      if (!inserted) {
        ASSERT_EQ(it->second, static_cast<int>(i))
            << "order " << keys[r] << " split across partitions";
      }
    }
  }

  // Partitions are reasonably balanced (hash partitioning).
  const int64_t ideal = lineitem.num_rows() / 7;
  for (const auto& p : parts) {
    EXPECT_GT(p->num_rows(), ideal / 2);
    EXPECT_LT(p->num_rows(), ideal * 2);
  }
}

TEST(PartitionTest, SharesDictionaries) {
  const auto& lineitem = TestDb().table("lineitem");
  const auto parts = cluster::PartitionByKey(lineitem, "l_orderkey", 3);
  for (const auto& p : parts) {
    EXPECT_EQ(p->column("l_shipmode").dict().get(),
              lineitem.column("l_shipmode").dict().get());
  }
}

TEST(ClusterModelTest, MoreNodesReduceQ1Time) {
  // Q1 is bandwidth-bound; with enough memory per node, adding nodes must
  // reduce simulated time (until network latency takes over).
  hw::CostModel model;
  double prev = 1e9;
  for (int n : {2, 4, 8}) {
    cluster::ClusterOptions opts;
    opts.num_nodes = n;
    opts.sf_scale = 10.0;
    const cluster::WimpiCluster wimpi(TestDb(), opts);
    const auto run = wimpi.Run(1, model).value();
    EXPECT_LT(run.total_seconds, prev) << n << " nodes";
    prev = run.total_seconds;
  }
}

TEST(ClusterModelTest, Q13TimeIsFlatAcrossClusterSizes) {
  hw::CostModel model;
  double first = -1;
  for (int n : {2, 4, 8}) {
    cluster::ClusterOptions opts;
    opts.num_nodes = n;
    const cluster::WimpiCluster wimpi(TestDb(), opts);
    const auto run = wimpi.Run(13, model).value();
    if (first < 0) {
      first = run.total_seconds;
    } else {
      EXPECT_NEAR(run.total_seconds, first, first * 1e-6);
    }
  }
}

TEST(ClusterModelTest, MemoryPressureTriggersSpill) {
  hw::CostModel model;
  cluster::ClusterOptions opts;
  opts.num_nodes = 2;
  opts.sf_scale = 50.0;                          // blow past 1 GB per node
  opts.node_memory_bytes = 64.0 * 1024 * 1024;   // tiny nodes
  const cluster::WimpiCluster small(TestDb(), opts);
  const auto constrained = small.Run(1, model).value();
  EXPECT_GT(constrained.spill_seconds, 0.0);

  opts.node_memory_bytes = 1e12;  // effectively infinite
  const cluster::WimpiCluster big(TestDb(), opts);
  const auto unconstrained = big.Run(1, model).value();
  EXPECT_EQ(unconstrained.spill_seconds, 0.0);
  EXPECT_LT(unconstrained.total_seconds, constrained.total_seconds);
}

TEST(ClusterModelTest, NetworkModelMatchesEffectiveBandwidth) {
  cluster::ClusterOptions opts;
  opts.num_nodes = 2;
  const cluster::WimpiCluster wimpi(TestDb(), opts);
  // 220 Mbit worth of payload should take ~1 second plus latency.
  const double s = wimpi.NetworkSeconds(220e6 / 8.0, 1);
  EXPECT_NEAR(s, 1.0 + opts.per_node_latency_s, 1e-9);
}

TEST(ClusterModelTest, NodeLogicalBytesScalesWithSf) {
  cluster::ClusterOptions opts;
  opts.num_nodes = 4;
  const cluster::WimpiCluster wimpi(TestDb(), opts);
  const double at1 = wimpi.NodeLogicalBytes(1.0);
  const double at10 = wimpi.NodeLogicalBytes(10.0);
  EXPECT_GT(at10, 9 * at1);
  EXPECT_LT(at10, 11 * at1);
}

}  // namespace
}  // namespace wimpi
