// Reference (naive) implementations of TPC-H Q12-Q22.
#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "common/date.h"
#include "common/strings.h"
#include "reference_util.h"

namespace wimpi::tpch_ref {

using wimpi::DateAddMonths;
using wimpi::LikeMatch;
using wimpi::ParseDate;
using wimpi::StartsWith;

RefResult RefQ12(const engine::Database& db) {
  const int32_t lo = ParseDate("1994-01-01");
  const int32_t hi = DateAddMonths(lo, 12) - 1;
  std::unordered_map<int64_t, std::string> order_priority;
  for (const auto& o : LoadOrders(db)) order_priority[o.orderkey] = o.priority;
  std::map<std::string, std::pair<double, double>> counts;  // high, low
  for (const auto& l : LoadLineitem(db)) {
    if (l.mode != "MAIL" && l.mode != "SHIP") continue;
    if (l.receipt < lo || l.receipt > hi) continue;
    if (!(l.commit < l.receipt && l.ship < l.commit)) continue;
    const std::string& p = order_priority[l.orderkey];
    auto& [high, low] = counts[l.mode];
    if (p == "1-URGENT" || p == "2-HIGH") {
      high += 1;
    } else {
      low += 1;
    }
  }
  RefResult out;
  for (const auto& [mode, c] : counts) {
    out.push_back({mode, c.first, c.second});
  }
  return out;
}

RefResult RefQ13(const engine::Database& db) {
  std::unordered_map<int32_t, int64_t> orders_per_cust;
  for (const auto& o : LoadOrders(db)) {
    if (LikeMatch(o.comment, "%special%requests%")) continue;
    ++orders_per_cust[o.custkey];
  }
  std::map<int64_t, int64_t> dist;
  for (const auto& c : LoadCustomer(db)) {
    auto it = orders_per_cust.find(c.custkey);
    ++dist[it == orders_per_cust.end() ? 0 : it->second];
  }
  std::vector<std::pair<int64_t, int64_t>> rows(dist.begin(), dist.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first > b.first;
  });
  RefResult out;
  for (const auto& [count, n] : rows) out.push_back({count, n});
  return out;
}

RefResult RefQ14(const engine::Database& db) {
  const int32_t lo = ParseDate("1995-09-01");
  const int32_t hi = DateAddMonths(lo, 1) - 1;
  std::unordered_map<int32_t, bool> promo;
  for (const auto& p : LoadPart(db)) {
    promo[p.partkey] = StartsWith(p.type, "PROMO");
  }
  double promo_rev = 0, total = 0;
  for (const auto& l : LoadLineitem(db)) {
    if (l.ship < lo || l.ship > hi) continue;
    const double rev = l.price * (1 - l.disc);
    total += rev;
    if (promo.at(l.partkey)) promo_rev += rev;
  }
  return {{total == 0 ? 0.0 : 100.0 * promo_rev / total}};
}

RefResult RefQ15(const engine::Database& db) {
  const int32_t lo = ParseDate("1996-01-01");
  const int32_t hi = DateAddMonths(lo, 3) - 1;
  std::unordered_map<int32_t, double> rev;
  for (const auto& l : LoadLineitem(db)) {
    if (l.ship >= lo && l.ship <= hi) {
      rev[l.suppkey] += l.price * (1 - l.disc);
    }
  }
  double best = 0;
  for (const auto& [k, v] : rev) best = std::max(best, v);
  struct Row {
    double rev;
    int32_t suppkey;
    std::string name, addr, phone;
  };
  std::vector<Row> rows;
  for (const auto& s : LoadSupplier(db)) {
    auto it = rev.find(s.suppkey);
    if (it != rev.end() && it->second >= best) {
      rows.push_back({it->second, s.suppkey, s.name, s.address, s.phone});
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.suppkey < b.suppkey; });
  RefResult out;
  for (const auto& r : rows) {
    out.push_back({r.rev, static_cast<int64_t>(r.suppkey), r.name, r.addr,
                   r.phone});
  }
  return out;
}

RefResult RefQ16(const engine::Database& db) {
  static const std::set<int32_t> kSizes = {49, 14, 23, 45, 19, 3, 36, 9};
  std::unordered_set<int32_t> bad_supp;
  for (const auto& s : LoadSupplier(db)) {
    if (LikeMatch(s.comment, "%Customer%Complaints%")) {
      bad_supp.insert(s.suppkey);
    }
  }
  struct PartInfo {
    std::string brand, type;
    int32_t size;
  };
  std::unordered_map<int32_t, PartInfo> parts;
  for (const auto& p : LoadPart(db)) {
    if (p.brand != "Brand#45" && !LikeMatch(p.type, "MEDIUM POLISHED%") &&
        kSizes.count(p.size)) {
      parts[p.partkey] = {p.brand, p.type, p.size};
    }
  }
  std::map<std::tuple<std::string, std::string, int32_t>,
           std::set<int32_t>>
      supps;
  for (const auto& x : LoadPartsupp(db)) {
    if (bad_supp.count(x.suppkey)) continue;
    auto it = parts.find(x.partkey);
    if (it == parts.end()) continue;
    supps[{it->second.brand, it->second.type, it->second.size}].insert(
        x.suppkey);
  }
  struct Row {
    std::string brand, type;
    int32_t size;
    int64_t cnt;
  };
  std::vector<Row> rows;
  for (const auto& [k, v] : supps) {
    rows.push_back({std::get<0>(k), std::get<1>(k), std::get<2>(k),
                    static_cast<int64_t>(v.size())});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return std::tie(b.cnt, a.brand, a.type, a.size) <
           std::tie(a.cnt, b.brand, b.type, b.size);
  });
  RefResult out;
  for (const auto& r : rows) {
    out.push_back({r.brand, r.type, static_cast<int64_t>(r.size), r.cnt});
  }
  return out;
}

RefResult RefQ17(const engine::Database& db) {
  std::unordered_set<int32_t> target;
  for (const auto& p : LoadPart(db)) {
    if (p.brand == "Brand#23" && p.container == "MED BOX") {
      target.insert(p.partkey);
    }
  }
  std::unordered_map<int32_t, std::pair<double, int64_t>> qty;  // sum, n
  const auto lineitems = LoadLineitem(db);
  for (const auto& l : lineitems) {
    if (!target.count(l.partkey)) continue;
    auto& [s, n] = qty[l.partkey];
    s += l.qty;
    ++n;
  }
  double total = 0;
  for (const auto& l : lineitems) {
    auto it = qty.find(l.partkey);
    if (it == qty.end()) continue;
    const double avg = it->second.first / static_cast<double>(it->second.second);
    if (l.qty < 0.2 * avg) total += l.price;
  }
  return {{total / 7.0}};
}

RefResult RefQ18(const engine::Database& db) {
  std::unordered_map<int64_t, double> qty;
  for (const auto& l : LoadLineitem(db)) qty[l.orderkey] += l.qty;
  std::unordered_map<int32_t, std::string> cust_name;
  for (const auto& c : LoadCustomer(db)) cust_name[c.custkey] = c.name;
  struct Row {
    std::string cname;
    int32_t custkey;
    int64_t okey;
    int32_t odate;
    double totalprice, sumqty;
  };
  std::vector<Row> rows;
  for (const auto& o : LoadOrders(db)) {
    auto it = qty.find(o.orderkey);
    if (it == qty.end() || it->second <= 300) continue;
    rows.push_back({cust_name[o.custkey], o.custkey, o.orderkey, o.orderdate,
                    o.totalprice, it->second});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.totalprice != b.totalprice) return a.totalprice > b.totalprice;
    return a.odate < b.odate;
  });
  if (rows.size() > 100) rows.resize(100);
  RefResult out;
  for (const auto& r : rows) {
    out.push_back({r.cname, static_cast<int64_t>(r.custkey), r.okey,
                   static_cast<int64_t>(r.odate), r.totalprice, r.sumqty});
  }
  return out;
}

RefResult RefQ19(const engine::Database& db) {
  std::unordered_map<int32_t, const PartRow*> parts;
  const auto part_rows = LoadPart(db);
  for (const auto& p : part_rows) parts[p.partkey] = &p;
  auto in = [](const std::string& v, std::initializer_list<const char*> set) {
    for (const char* s : set) {
      if (v == s) return true;
    }
    return false;
  };
  double rev = 0;
  for (const auto& l : LoadLineitem(db)) {
    if (l.instr != "DELIVER IN PERSON") continue;
    if (l.mode != "AIR" && l.mode != "AIR REG") continue;
    const PartRow& p = *parts.at(l.partkey);
    const bool b1 = p.brand == "Brand#12" &&
                    in(p.container, {"SM CASE", "SM BOX", "SM PACK", "SM PKG"}) &&
                    l.qty >= 1 && l.qty <= 11 && p.size >= 1 && p.size <= 5;
    const bool b2 = p.brand == "Brand#23" &&
                    in(p.container, {"MED BAG", "MED BOX", "MED PKG", "MED PACK"}) &&
                    l.qty >= 10 && l.qty <= 20 && p.size >= 1 && p.size <= 10;
    const bool b3 = p.brand == "Brand#34" &&
                    in(p.container, {"LG CASE", "LG BOX", "LG PACK", "LG PKG"}) &&
                    l.qty >= 20 && l.qty <= 30 && p.size >= 1 && p.size <= 15;
    if (b1 || b2 || b3) rev += l.price * (1 - l.disc);
  }
  return {{rev}};
}

RefResult RefQ20(const engine::Database& db) {
  const int32_t canada = RefNationKey(db, "CANADA");
  const int32_t lo = ParseDate("1994-01-01");
  const int32_t hi = DateAddMonths(lo, 12) - 1;
  std::unordered_set<int32_t> forest;
  for (const auto& p : LoadPart(db)) {
    if (LikeMatch(p.name, "forest%")) forest.insert(p.partkey);
  }
  std::unordered_map<int64_t, double> shipped;  // (part,supp) -> qty
  for (const auto& l : LoadLineitem(db)) {
    if (l.ship < lo || l.ship > hi || !forest.count(l.partkey)) continue;
    shipped[(static_cast<int64_t>(l.partkey) << 32) | l.suppkey] += l.qty;
  }
  std::unordered_set<int32_t> qualified;
  for (const auto& x : LoadPartsupp(db)) {
    auto it = shipped.find((static_cast<int64_t>(x.partkey) << 32) | x.suppkey);
    if (it == shipped.end()) continue;
    if (x.availqty > 0.5 * it->second) qualified.insert(x.suppkey);
  }
  struct Row {
    std::string name, addr;
  };
  std::vector<Row> rows;
  for (const auto& s : LoadSupplier(db)) {
    if (s.nationkey == canada && qualified.count(s.suppkey)) {
      rows.push_back({s.name, s.address});
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.name < b.name; });
  RefResult out;
  for (const auto& r : rows) out.push_back({r.name, r.addr});
  return out;
}

RefResult RefQ21(const engine::Database& db) {
  const int32_t saudi = RefNationKey(db, "SAUDI ARABIA");
  std::unordered_map<int64_t, std::set<int32_t>> supp_all, supp_late;
  const auto lineitems = LoadLineitem(db);
  for (const auto& l : lineitems) {
    supp_all[l.orderkey].insert(l.suppkey);
    if (l.receipt > l.commit) supp_late[l.orderkey].insert(l.suppkey);
  }
  std::unordered_set<int64_t> f_orders;
  for (const auto& o : LoadOrders(db)) {
    if (o.status == "F") f_orders.insert(o.orderkey);
  }
  std::unordered_map<int32_t, std::string> saudi_supp;
  for (const auto& s : LoadSupplier(db)) {
    if (s.nationkey == saudi) saudi_supp[s.suppkey] = s.name;
  }
  std::map<std::string, int64_t> waits;
  for (const auto& l : lineitems) {
    if (l.receipt <= l.commit) continue;
    auto sit = saudi_supp.find(l.suppkey);
    if (sit == saudi_supp.end()) continue;
    if (!f_orders.count(l.orderkey)) continue;
    if (supp_all[l.orderkey].size() <= 1) continue;       // EXISTS other supp
    if (supp_late[l.orderkey].size() != 1) continue;      // NOT EXISTS other late
    ++waits[sit->second];
  }
  std::vector<std::pair<std::string, int64_t>> rows(waits.begin(),
                                                    waits.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (rows.size() > 100) rows.resize(100);
  RefResult out;
  for (const auto& [name, n] : rows) out.push_back({name, n});
  return out;
}

RefResult RefQ22(const engine::Database& db) {
  static const std::set<std::string> kCodes = {"13", "31", "23", "29",
                                               "30", "18", "17"};
  const auto customers = LoadCustomer(db);
  double sum = 0;
  int64_t n = 0;
  for (const auto& c : customers) {
    if (c.acctbal > 0 && kCodes.count(c.phone.substr(0, 2))) {
      sum += c.acctbal;
      ++n;
    }
  }
  const double avg = n == 0 ? 0 : sum / static_cast<double>(n);
  std::unordered_set<int32_t> has_orders;
  for (const auto& o : LoadOrders(db)) has_orders.insert(o.custkey);
  std::map<int32_t, std::pair<int64_t, double>> groups;
  for (const auto& c : customers) {
    if (!kCodes.count(c.phone.substr(0, 2))) continue;
    if (c.acctbal <= avg) continue;
    if (has_orders.count(c.custkey)) continue;
    auto& [cnt, total] = groups[c.nationkey + 10];
    ++cnt;
    total += c.acctbal;
  }
  RefResult out;
  for (const auto& [code, v] : groups) {
    out.push_back({static_cast<int64_t>(code), v.first, v.second});
  }
  return out;
}

}  // namespace wimpi::tpch_ref
