// Hardware model tests: Table I data fidelity, the paper's calibration
// anchors, and cost-model sanity properties.
#include "gtest/gtest.h"
#include "hw/cost_model.h"
#include "hw/profile.h"
#include "micro/model.h"

namespace wimpi::hw {
namespace {

TEST(ProfileTest, AllTenComparisonPoints) {
  EXPECT_EQ(AllProfiles().size(), 10u);
  EXPECT_EQ(OnPremProfiles().size(), 2u);
  EXPECT_EQ(CloudProfiles().size(), 7u);
  EXPECT_EQ(ServerProfiles().size(), 9u);
  EXPECT_EQ(PiProfile().cpu, "ARM Cortex-A53");
}

TEST(ProfileTest, TableOneData) {
  const auto& e5 = ProfileByName("op-e5");
  EXPECT_DOUBLE_EQ(e5.freq_ghz, 2.2);
  EXPECT_EQ(e5.cores, 10);
  EXPECT_DOUBLE_EQ(e5.msrp_usd, 1389);
  EXPECT_DOUBLE_EQ(e5.tdp_watts, 95);
  EXPECT_EQ(e5.sockets, 2);

  const auto& gold = ProfileByName("op-gold");
  EXPECT_DOUBLE_EQ(gold.msrp_usd, 3358);
  EXPECT_DOUBLE_EQ(gold.tdp_watts, 165);

  const auto& pi = PiProfile();
  EXPECT_DOUBLE_EQ(pi.msrp_usd, 35);
  EXPECT_DOUBLE_EQ(pi.tdp_watts, 5.1);
  EXPECT_NEAR(pi.hourly_usd, 0.0004, 1e-9);
  EXPECT_EQ(pi.cores, 4);
  EXPECT_DOUBLE_EQ(pi.llc_bytes, 512 * 1024.0);

  const auto& c6g = ProfileByName("c6g.metal");
  EXPECT_EQ(c6g.cores, 64);
  EXPECT_DOUBLE_EQ(c6g.hourly_usd, 2.176);

  // Cloud SKUs have no public MSRP/TDP (the '-' cells).
  for (const auto* p : CloudProfiles()) {
    EXPECT_LT(p->msrp_usd, 0) << p->name;
    EXPECT_LT(p->tdp_watts, 0) << p->name;
  }
}

// The paper's microbenchmark anchors (DESIGN.md §5).
TEST(CalibrationTest, SingleCoreComputeAnchors) {
  const double pi = PiProfile().SingleCoreRate();
  const double e5 = ProfileByName("op-e5").SingleCoreRate();
  const double gold = ProfileByName("op-gold").SingleCoreRate();
  const double m5 = ProfileByName("m5.metal").SingleCoreRate();
  EXPECT_GE(e5 / pi, 2.0);
  EXPECT_LE(e5 / pi, 3.0);  // "only between 2-3x worse than op-e5"
  EXPECT_GE(gold / pi, 4.5);
  EXPECT_LE(gold / pi, 6.5);  // "5-6x worse than op-gold..."
  EXPECT_GE(m5 / pi, 4.0);
  EXPECT_LE(m5 / pi, 6.5);  // "...and m5.metal"
  // z1d.metal has the best single-core performance.
  const double z1d = ProfileByName("z1d.metal").SingleCoreRate();
  for (const auto& p : AllProfiles()) {
    EXPECT_LE(p.SingleCoreRate(), z1d) << p.name;
  }
}

TEST(CalibrationTest, SysbenchPrimeAnchor) {
  const CostModel cm;
  const micro::MicrobenchModel m(cm);
  const double pi = m.SysbenchPrimeSeconds(PiProfile(), false);
  const double e5 = m.SysbenchPrimeSeconds(ProfileByName("op-e5"), false);
  // "nearly identical to the Intel E5-2660 v2"
  EXPECT_NEAR(pi / e5, 1.0, 0.15);
  // Others are 1.2-3.9x better than the Pi single-core.
  for (const auto* p : ServerProfiles()) {
    if (p->name == "op-e5") continue;
    const double ratio = pi / m.SysbenchPrimeSeconds(*p, false);
    EXPECT_GE(ratio, 1.1) << p->name;
    EXPECT_LE(ratio, 4.2) << p->name;
  }
}

TEST(CalibrationTest, MemoryBandwidthAnchors) {
  const double pi_single = PiProfile().mem_bw_single_gbps;
  const double pi_all = PiProfile().mem_bw_all_gbps;
  // Single channel: all-core barely above single-core.
  EXPECT_LT(pi_all / pi_single, 1.3);
  for (const auto* p : ServerProfiles()) {
    const double s = p->mem_bw_single_gbps / pi_single;
    const double a = p->mem_bw_all_gbps / pi_all;
    EXPECT_GE(s, 4.5) << p->name;   // "5-11x lower" single-core
    EXPECT_LE(s, 11.5) << p->name;
    EXPECT_GE(a, 19.0) << p->name;  // "20-99x higher" all-core
    EXPECT_LE(a, 100.0) << p->name;
  }
  // 24 Pi nodes ~ op-e5 / m4.10xlarge aggregate bandwidth (~48 GB/s).
  EXPECT_NEAR(24 * pi_all, ProfileByName("m4.10xlarge").mem_bw_all_gbps, 10);
}

TEST(CostModelTest, MoreBytesNeverFaster) {
  const CostModel m;
  exec::OpStats op;
  op.op = "x";
  op.compute_ops = 1e6;
  double prev = 0;
  for (double bytes = 1e5; bytes < 1e10; bytes *= 10) {
    op.seq_bytes = bytes;
    const double s = m.OpSeconds(PiProfile(), op);
    EXPECT_GE(s, prev);
    prev = s;
  }
}

TEST(CostModelTest, MoreThreadsNeverSlower) {
  const CostModel m;
  exec::OpStats op;
  op.op = "x";
  op.compute_ops = 1e9;
  op.seq_bytes = 1e8;
  for (const auto& p : AllProfiles()) {
    double prev = 1e18;
    for (int t = 1; t <= p.threads; t *= 2) {
      const double s = m.OpSeconds(p, op, t);
      EXPECT_LE(s, prev + 1e-12) << p.name << " threads=" << t;
      prev = s;
    }
  }
}

TEST(CostModelTest, LlcResidentRandomAccessIsCheaper) {
  const CostModel m;
  exec::OpStats small, big;
  small.op = big.op = "probe";
  small.rand_count = big.rand_count = 1e7;
  small.rand_struct_bytes = 100 * 1024;        // fits Pi LLC
  big.rand_struct_bytes = 64 * 1024 * 1024.0;  // memory resident
  EXPECT_LT(m.OpSeconds(PiProfile(), small), m.OpSeconds(PiProfile(), big));
}

TEST(CostModelTest, LlcResidentStreamIsFaster) {
  const CostModel m;
  const auto& e5 = ProfileByName("op-e5");
  exec::OpStats in_llc, in_mem;
  in_llc.op = in_mem.op = "scan";
  in_llc.seq_bytes = 1e6;    // << 25 MB LLC
  in_mem.seq_bytes = 100e6;  // >> LLC
  // Per-byte cost must be lower for the cache-resident stream.
  EXPECT_LT(m.OpSeconds(e5, in_llc) / 1e6, m.OpSeconds(e5, in_mem) / 100e6);
}

TEST(CostModelTest, SerialOpIgnoresCores) {
  const CostModel m;
  exec::OpStats op;
  op.op = "merge";
  op.compute_ops = 1e8;
  op.parallel_fraction = 0.0;
  const auto& gold = ProfileByName("op-gold");
  EXPECT_NEAR(m.OpSeconds(gold, op, 1), m.OpSeconds(gold, op, 36), 1e-12);
}

TEST(CostModelTest, QueryOverheadGivesRuntimeFloor) {
  const CostModel m;
  const exec::QueryStats empty;
  // Empty queries still cost a few ms (the Table II floor), more on the Pi.
  const double e5 = m.QuerySeconds(ProfileByName("op-e5"), empty);
  const double pi = m.QuerySeconds(PiProfile(), empty);
  EXPECT_GT(e5, 0.004);
  EXPECT_LT(e5, 0.02);
  EXPECT_GT(pi, 1.5 * e5);
}

TEST(CostModelTest, DbThreadCapLimitsC6g) {
  const CostModel m;
  const auto& c6g = ProfileByName("c6g.metal");
  // 64 threads must not beat the 24-thread cap.
  exec::OpStats op;
  op.op = "x";
  op.compute_ops = 1e9;
  EXPECT_NEAR(m.OpSeconds(c6g, op, 64), m.OpSeconds(c6g, op, 24), 1e-12);
}

}  // namespace
}  // namespace wimpi::hw
