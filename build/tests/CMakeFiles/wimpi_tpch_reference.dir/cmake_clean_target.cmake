file(REMOVE_RECURSE
  "libwimpi_tpch_reference.a"
)
