# Empty compiler generated dependencies file for wimpi_tpch_reference.
# This may be replaced when dependencies are built.
