file(REMOVE_RECURSE
  "CMakeFiles/wimpi_tpch_reference.dir/reference_a.cc.o"
  "CMakeFiles/wimpi_tpch_reference.dir/reference_a.cc.o.d"
  "CMakeFiles/wimpi_tpch_reference.dir/reference_b.cc.o"
  "CMakeFiles/wimpi_tpch_reference.dir/reference_b.cc.o.d"
  "CMakeFiles/wimpi_tpch_reference.dir/reference_load.cc.o"
  "CMakeFiles/wimpi_tpch_reference.dir/reference_load.cc.o.d"
  "libwimpi_tpch_reference.a"
  "libwimpi_tpch_reference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimpi_tpch_reference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
