file(REMOVE_RECURSE
  "CMakeFiles/methodology_test.dir/methodology_test.cc.o"
  "CMakeFiles/methodology_test.dir/methodology_test.cc.o.d"
  "methodology_test"
  "methodology_test.pdb"
  "methodology_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/methodology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
