# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/queries_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/dbgen_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/micro_test[1]_include.cmake")
include("/root/repo/build/tests/strategies_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/tbl_io_test[1]_include.cmake")
include("/root/repo/build/tests/methodology_test[1]_include.cmake")
