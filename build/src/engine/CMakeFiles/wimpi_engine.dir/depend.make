# Empty dependencies file for wimpi_engine.
# This may be replaced when dependencies are built.
