file(REMOVE_RECURSE
  "CMakeFiles/wimpi_engine.dir/query_result.cc.o"
  "CMakeFiles/wimpi_engine.dir/query_result.cc.o.d"
  "libwimpi_engine.a"
  "libwimpi_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimpi_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
