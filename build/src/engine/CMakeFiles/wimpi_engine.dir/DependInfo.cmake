
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/query_result.cc" "src/engine/CMakeFiles/wimpi_engine.dir/query_result.cc.o" "gcc" "src/engine/CMakeFiles/wimpi_engine.dir/query_result.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exec/CMakeFiles/wimpi_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/wimpi_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wimpi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
