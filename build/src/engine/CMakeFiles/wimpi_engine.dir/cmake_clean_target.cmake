file(REMOVE_RECURSE
  "libwimpi_engine.a"
)
