# Empty compiler generated dependencies file for wimpi_hw.
# This may be replaced when dependencies are built.
