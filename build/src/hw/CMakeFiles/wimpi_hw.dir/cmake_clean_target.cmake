file(REMOVE_RECURSE
  "libwimpi_hw.a"
)
