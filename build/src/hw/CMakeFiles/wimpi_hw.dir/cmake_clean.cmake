file(REMOVE_RECURSE
  "CMakeFiles/wimpi_hw.dir/cost_model.cc.o"
  "CMakeFiles/wimpi_hw.dir/cost_model.cc.o.d"
  "CMakeFiles/wimpi_hw.dir/profile.cc.o"
  "CMakeFiles/wimpi_hw.dir/profile.cc.o.d"
  "libwimpi_hw.a"
  "libwimpi_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimpi_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
