file(REMOVE_RECURSE
  "CMakeFiles/wimpi_exec.dir/aggregate.cc.o"
  "CMakeFiles/wimpi_exec.dir/aggregate.cc.o.d"
  "CMakeFiles/wimpi_exec.dir/expr.cc.o"
  "CMakeFiles/wimpi_exec.dir/expr.cc.o.d"
  "CMakeFiles/wimpi_exec.dir/filter.cc.o"
  "CMakeFiles/wimpi_exec.dir/filter.cc.o.d"
  "CMakeFiles/wimpi_exec.dir/join.cc.o"
  "CMakeFiles/wimpi_exec.dir/join.cc.o.d"
  "CMakeFiles/wimpi_exec.dir/sort.cc.o"
  "CMakeFiles/wimpi_exec.dir/sort.cc.o.d"
  "libwimpi_exec.a"
  "libwimpi_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimpi_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
