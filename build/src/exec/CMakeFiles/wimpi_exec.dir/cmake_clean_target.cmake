file(REMOVE_RECURSE
  "libwimpi_exec.a"
)
