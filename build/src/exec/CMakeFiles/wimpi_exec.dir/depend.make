# Empty dependencies file for wimpi_exec.
# This may be replaced when dependencies are built.
