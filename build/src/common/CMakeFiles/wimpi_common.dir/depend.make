# Empty dependencies file for wimpi_common.
# This may be replaced when dependencies are built.
