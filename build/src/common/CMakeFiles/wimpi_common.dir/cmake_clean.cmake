file(REMOVE_RECURSE
  "CMakeFiles/wimpi_common.dir/cli.cc.o"
  "CMakeFiles/wimpi_common.dir/cli.cc.o.d"
  "CMakeFiles/wimpi_common.dir/date.cc.o"
  "CMakeFiles/wimpi_common.dir/date.cc.o.d"
  "CMakeFiles/wimpi_common.dir/decimal.cc.o"
  "CMakeFiles/wimpi_common.dir/decimal.cc.o.d"
  "CMakeFiles/wimpi_common.dir/logging.cc.o"
  "CMakeFiles/wimpi_common.dir/logging.cc.o.d"
  "CMakeFiles/wimpi_common.dir/strings.cc.o"
  "CMakeFiles/wimpi_common.dir/strings.cc.o.d"
  "CMakeFiles/wimpi_common.dir/table_printer.cc.o"
  "CMakeFiles/wimpi_common.dir/table_printer.cc.o.d"
  "libwimpi_common.a"
  "libwimpi_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimpi_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
