file(REMOVE_RECURSE
  "libwimpi_common.a"
)
