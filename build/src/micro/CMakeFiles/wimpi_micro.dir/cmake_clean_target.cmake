file(REMOVE_RECURSE
  "libwimpi_micro.a"
)
