file(REMOVE_RECURSE
  "CMakeFiles/wimpi_micro.dir/kernels.cc.o"
  "CMakeFiles/wimpi_micro.dir/kernels.cc.o.d"
  "CMakeFiles/wimpi_micro.dir/model.cc.o"
  "CMakeFiles/wimpi_micro.dir/model.cc.o.d"
  "libwimpi_micro.a"
  "libwimpi_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimpi_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
