# Empty dependencies file for wimpi_micro.
# This may be replaced when dependencies are built.
