# Empty compiler generated dependencies file for wimpi_tpch.
# This may be replaced when dependencies are built.
