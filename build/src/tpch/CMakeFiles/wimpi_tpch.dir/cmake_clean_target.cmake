file(REMOVE_RECURSE
  "libwimpi_tpch.a"
)
