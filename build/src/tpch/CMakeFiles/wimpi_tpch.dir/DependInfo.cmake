
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tpch/dbgen.cc" "src/tpch/CMakeFiles/wimpi_tpch.dir/dbgen.cc.o" "gcc" "src/tpch/CMakeFiles/wimpi_tpch.dir/dbgen.cc.o.d"
  "/root/repo/src/tpch/queries_a.cc" "src/tpch/CMakeFiles/wimpi_tpch.dir/queries_a.cc.o" "gcc" "src/tpch/CMakeFiles/wimpi_tpch.dir/queries_a.cc.o.d"
  "/root/repo/src/tpch/queries_b.cc" "src/tpch/CMakeFiles/wimpi_tpch.dir/queries_b.cc.o" "gcc" "src/tpch/CMakeFiles/wimpi_tpch.dir/queries_b.cc.o.d"
  "/root/repo/src/tpch/query_utils.cc" "src/tpch/CMakeFiles/wimpi_tpch.dir/query_utils.cc.o" "gcc" "src/tpch/CMakeFiles/wimpi_tpch.dir/query_utils.cc.o.d"
  "/root/repo/src/tpch/tbl_io.cc" "src/tpch/CMakeFiles/wimpi_tpch.dir/tbl_io.cc.o" "gcc" "src/tpch/CMakeFiles/wimpi_tpch.dir/tbl_io.cc.o.d"
  "/root/repo/src/tpch/text.cc" "src/tpch/CMakeFiles/wimpi_tpch.dir/text.cc.o" "gcc" "src/tpch/CMakeFiles/wimpi_tpch.dir/text.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/wimpi_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/wimpi_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/wimpi_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wimpi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
