file(REMOVE_RECURSE
  "CMakeFiles/wimpi_tpch.dir/dbgen.cc.o"
  "CMakeFiles/wimpi_tpch.dir/dbgen.cc.o.d"
  "CMakeFiles/wimpi_tpch.dir/queries_a.cc.o"
  "CMakeFiles/wimpi_tpch.dir/queries_a.cc.o.d"
  "CMakeFiles/wimpi_tpch.dir/queries_b.cc.o"
  "CMakeFiles/wimpi_tpch.dir/queries_b.cc.o.d"
  "CMakeFiles/wimpi_tpch.dir/query_utils.cc.o"
  "CMakeFiles/wimpi_tpch.dir/query_utils.cc.o.d"
  "CMakeFiles/wimpi_tpch.dir/tbl_io.cc.o"
  "CMakeFiles/wimpi_tpch.dir/tbl_io.cc.o.d"
  "CMakeFiles/wimpi_tpch.dir/text.cc.o"
  "CMakeFiles/wimpi_tpch.dir/text.cc.o.d"
  "libwimpi_tpch.a"
  "libwimpi_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimpi_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
