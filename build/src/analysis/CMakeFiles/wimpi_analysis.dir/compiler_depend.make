# Empty compiler generated dependencies file for wimpi_analysis.
# This may be replaced when dependencies are built.
