file(REMOVE_RECURSE
  "libwimpi_analysis.a"
)
