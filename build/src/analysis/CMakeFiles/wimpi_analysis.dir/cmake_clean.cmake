file(REMOVE_RECURSE
  "CMakeFiles/wimpi_analysis.dir/metrics.cc.o"
  "CMakeFiles/wimpi_analysis.dir/metrics.cc.o.d"
  "CMakeFiles/wimpi_analysis.dir/power.cc.o"
  "CMakeFiles/wimpi_analysis.dir/power.cc.o.d"
  "libwimpi_analysis.a"
  "libwimpi_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimpi_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
