# Empty dependencies file for wimpi_strategies.
# This may be replaced when dependencies are built.
