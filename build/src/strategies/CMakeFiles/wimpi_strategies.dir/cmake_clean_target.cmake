file(REMOVE_RECURSE
  "libwimpi_strategies.a"
)
