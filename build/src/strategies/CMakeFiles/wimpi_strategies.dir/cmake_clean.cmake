file(REMOVE_RECURSE
  "CMakeFiles/wimpi_strategies.dir/strategies.cc.o"
  "CMakeFiles/wimpi_strategies.dir/strategies.cc.o.d"
  "libwimpi_strategies.a"
  "libwimpi_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimpi_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
