# Empty dependencies file for wimpi_cluster.
# This may be replaced when dependencies are built.
