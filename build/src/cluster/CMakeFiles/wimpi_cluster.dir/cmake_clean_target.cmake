file(REMOVE_RECURSE
  "libwimpi_cluster.a"
)
