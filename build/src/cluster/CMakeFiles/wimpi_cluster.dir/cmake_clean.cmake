file(REMOVE_RECURSE
  "CMakeFiles/wimpi_cluster.dir/partials.cc.o"
  "CMakeFiles/wimpi_cluster.dir/partials.cc.o.d"
  "CMakeFiles/wimpi_cluster.dir/partition.cc.o"
  "CMakeFiles/wimpi_cluster.dir/partition.cc.o.d"
  "CMakeFiles/wimpi_cluster.dir/wimpi_cluster.cc.o"
  "CMakeFiles/wimpi_cluster.dir/wimpi_cluster.cc.o.d"
  "libwimpi_cluster.a"
  "libwimpi_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimpi_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
