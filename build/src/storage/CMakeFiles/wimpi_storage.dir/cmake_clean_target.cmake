file(REMOVE_RECURSE
  "libwimpi_storage.a"
)
