# Empty compiler generated dependencies file for wimpi_storage.
# This may be replaced when dependencies are built.
