file(REMOVE_RECURSE
  "CMakeFiles/wimpi_storage.dir/column.cc.o"
  "CMakeFiles/wimpi_storage.dir/column.cc.o.d"
  "CMakeFiles/wimpi_storage.dir/dictionary.cc.o"
  "CMakeFiles/wimpi_storage.dir/dictionary.cc.o.d"
  "CMakeFiles/wimpi_storage.dir/table.cc.o"
  "CMakeFiles/wimpi_storage.dir/table.cc.o.d"
  "libwimpi_storage.a"
  "libwimpi_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimpi_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
