file(REMOVE_RECURSE
  "CMakeFiles/hardware_advisor.dir/hardware_advisor.cpp.o"
  "CMakeFiles/hardware_advisor.dir/hardware_advisor.cpp.o.d"
  "hardware_advisor"
  "hardware_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardware_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
