# Empty dependencies file for hardware_advisor.
# This may be replaced when dependencies are built.
