file(REMOVE_RECURSE
  "CMakeFiles/wimpi_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/wimpi_bench_util.dir/bench_util.cc.o.d"
  "libwimpi_bench_util.a"
  "libwimpi_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimpi_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
