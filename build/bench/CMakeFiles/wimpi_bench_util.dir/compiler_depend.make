# Empty compiler generated dependencies file for wimpi_bench_util.
# This may be replaced when dependencies are built.
