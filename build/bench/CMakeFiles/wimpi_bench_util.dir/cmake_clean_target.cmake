file(REMOVE_RECURSE
  "libwimpi_bench_util.a"
)
