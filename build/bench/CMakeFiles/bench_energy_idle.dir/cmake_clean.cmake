file(REMOVE_RECURSE
  "CMakeFiles/bench_energy_idle.dir/bench_energy_idle.cc.o"
  "CMakeFiles/bench_energy_idle.dir/bench_energy_idle.cc.o.d"
  "bench_energy_idle"
  "bench_energy_idle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_energy_idle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
