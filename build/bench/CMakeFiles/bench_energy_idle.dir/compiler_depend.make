# Empty compiler generated dependencies file for bench_energy_idle.
# This may be replaced when dependencies are built.
