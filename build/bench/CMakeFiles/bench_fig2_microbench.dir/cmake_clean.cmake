file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_microbench.dir/bench_fig2_microbench.cc.o"
  "CMakeFiles/bench_fig2_microbench.dir/bench_fig2_microbench.cc.o.d"
  "bench_fig2_microbench"
  "bench_fig2_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
