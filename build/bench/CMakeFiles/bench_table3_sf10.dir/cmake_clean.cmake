file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_sf10.dir/bench_table3_sf10.cc.o"
  "CMakeFiles/bench_table3_sf10.dir/bench_table3_sf10.cc.o.d"
  "bench_table3_sf10"
  "bench_table3_sf10.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_sf10.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
