# Empty compiler generated dependencies file for bench_table3_sf10.
# This may be replaced when dependencies are built.
