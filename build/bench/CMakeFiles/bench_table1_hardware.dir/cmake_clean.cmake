file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_hardware.dir/bench_table1_hardware.cc.o"
  "CMakeFiles/bench_table1_hardware.dir/bench_table1_hardware.cc.o.d"
  "bench_table1_hardware"
  "bench_table1_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
