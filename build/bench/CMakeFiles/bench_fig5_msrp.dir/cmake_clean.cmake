file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_msrp.dir/bench_fig5_msrp.cc.o"
  "CMakeFiles/bench_fig5_msrp.dir/bench_fig5_msrp.cc.o.d"
  "bench_fig5_msrp"
  "bench_fig5_msrp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_msrp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
