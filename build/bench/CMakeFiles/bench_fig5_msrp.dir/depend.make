# Empty dependencies file for bench_fig5_msrp.
# This may be replaced when dependencies are built.
