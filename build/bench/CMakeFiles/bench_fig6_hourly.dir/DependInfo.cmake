
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig6_hourly.cc" "bench/CMakeFiles/bench_fig6_hourly.dir/bench_fig6_hourly.cc.o" "gcc" "bench/CMakeFiles/bench_fig6_hourly.dir/bench_fig6_hourly.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/wimpi_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/wimpi_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/wimpi_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/micro/CMakeFiles/wimpi_micro.dir/DependInfo.cmake"
  "/root/repo/build/src/strategies/CMakeFiles/wimpi_strategies.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/wimpi_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/tpch/CMakeFiles/wimpi_tpch.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/wimpi_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/wimpi_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/wimpi_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wimpi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
