// Ablation A3 (paper §III-C2): can heavier compression trade the Pi's
// strong CPU for its scarce memory bandwidth? Models a scan +
// equality-filter over a 10M-row string column stored three ways:
// raw strings (25 B/value), fixed-width dictionary codes (4 B/value), and
// bit-packed dictionary codes (1 B/value, extra unpack compute).
#include <cstdio>
#include <iostream>

#include "common/table_printer.h"
#include "exec/counters.h"
#include "hw/cost_model.h"
#include "hw/profile.h"

int main() {
  using wimpi::TablePrinter;
  using wimpi::exec::OpStats;
  using wimpi::exec::QueryStats;

  const double rows = 10e6;
  const wimpi::hw::CostModel model;

  struct Variant {
    const char* name;
    double bytes_per_value;
    double ops_per_value;
  };
  const Variant variants[] = {
      {"raw strings (25B)", 25.0, 6.0},       // memcmp per value
      {"dictionary codes (4B)", 4.0, 1.0},    // int compare
      {"bit-packed codes (1B)", 1.0, 3.0},    // unpack + compare
  };

  std::cout << "ABLATION: compression vs bandwidth for a 10M-row string "
               "scan (seconds, all cores)\n";
  TablePrinter t({"Encoding", "pi3b+", "op-gold", "pi speedup vs raw",
                  "op-gold speedup vs raw"});
  double pi_raw = 0, gold_raw = 0;
  for (const auto& v : variants) {
    QueryStats stats;
    OpStats op;
    op.op = v.name;
    op.seq_bytes = rows * v.bytes_per_value;
    op.compute_ops = rows * v.ops_per_value;
    stats.Add(op);
    const double pi =
        model.WorkSeconds(wimpi::hw::PiProfile(), stats);
    const double gold =
        model.WorkSeconds(wimpi::hw::ProfileByName("op-gold"), stats);
    if (pi_raw == 0) {
      pi_raw = pi;
      gold_raw = gold;
    }
    t.AddRow({v.name, TablePrinter::Fixed(pi, 3),
              TablePrinter::Fixed(gold, 3),
              TablePrinter::Multiplier(pi_raw / pi),
              TablePrinter::Multiplier(gold_raw / gold)});
  }
  t.Print(std::cout);
  std::cout << "\nReading: on the bandwidth-starved Pi even compute-heavier "
               "encodings pay for themselves, while on op-gold the gains "
               "flatten once the scan stops being bandwidth-bound -- the "
               "paper's argument that SBCs can afford aggressive "
               "compression previously considered too costly.\n";
  return 0;
}
