// Validates an exported distributed trace (and optionally an event log):
// the CI smoke gate behind `bench_table3_sf10 --trace/--events`. Checks
// that the JSON parses, that every span's parent resolves inside the same
// trace, that retry attempts chain to the attempt they retried, that every
// flow arrow has both ends, and that each event-log line is valid JSON.
// Exits nonzero with a message on the first structural problem, so a
// refactor that silently drops spans or breaks causality fails the build.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/json.h"

namespace {

using wimpi::JsonValue;

uint64_t HexField(const JsonValue& args, const char* key) {
  const JsonValue* v = args.Find(key);
  if (v == nullptr || !v->is_string()) return 0;
  return std::strtoull(v->AsString().c_str(), nullptr, 16);
}

bool Fail(const std::string& msg) {
  std::fprintf(stderr, "[trace-check] FAIL: %s\n", msg.c_str());
  return false;
}

bool CheckTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Fail("cannot read " + path);
  std::ostringstream text;
  text << in.rdbuf();

  JsonValue doc;
  std::string error;
  if (!JsonValue::Parse(text.str(), &doc, &error)) {
    return Fail(path + " does not parse: " + error);
  }
  const JsonValue* events = doc.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return Fail(path + " has no traceEvents array");
  }

  // First pass: collect every span id per trace.
  std::map<uint64_t, std::set<uint64_t>> spans_by_trace;
  std::map<std::string, int> flow_sides;  // "s"/"f" balance per flow id
  int spans = 0, attempts = 0, faults = 0;
  for (const JsonValue& e : events->AsArray()) {
    if (!e.is_object()) return Fail("non-object trace event");
    const std::string ph = e.GetString("ph", "");
    if (ph == "M") continue;  // metadata
    const JsonValue* args = e.Find("args");
    const uint64_t trace = args != nullptr ? HexField(*args, "trace") : 0;
    const uint64_t span = args != nullptr ? HexField(*args, "span") : 0;
    if (span != 0) spans_by_trace[trace].insert(span);
    if (ph == "X") ++spans;
    const std::string cat = e.GetString("cat", "");
    if (cat == "cluster.attempt") ++attempts;
    if (cat == "cluster.fault") ++faults;
    if (ph == "s" || ph == "f") {
      const JsonValue* id = e.Find("id");
      if (id == nullptr || !id->is_string()) {
        return Fail("flow event without id");
      }
      flow_sides[id->AsString()] += ph == "s" ? 1 : -1;
    }
  }
  if (spans == 0) return Fail(path + " contains no spans");
  if (attempts == 0) return Fail(path + " contains no cluster.attempt spans");

  // Second pass: every parent reference must resolve within its trace.
  int orphans = 0;
  for (const JsonValue& e : events->AsArray()) {
    const JsonValue* args = e.Find("args");
    if (args == nullptr) continue;
    const uint64_t trace = HexField(*args, "trace");
    const uint64_t parent = HexField(*args, "parent");
    if (parent == 0) continue;
    if (spans_by_trace[trace].count(parent) == 0) {
      ++orphans;
      std::fprintf(stderr,
                   "[trace-check] orphan: event '%s' parent %llx not in "
                   "trace %llx\n",
                   e.GetString("name", "?").c_str(),
                   static_cast<unsigned long long>(parent),
                   static_cast<unsigned long long>(trace));
    }
  }
  if (orphans > 0) {
    return Fail(std::to_string(orphans) + " orphaned parent reference(s)");
  }
  for (const auto& [id, balance] : flow_sides) {
    if (balance != 0) return Fail("unbalanced flow id " + id);
  }

  std::fprintf(stderr,
               "[trace-check] %s OK: %d spans (%d attempts, %d faults), "
               "%zu trace(s), %zu flow(s)\n",
               path.c_str(), spans, attempts, faults, spans_by_trace.size(),
               flow_sides.size());
  return true;
}

bool CheckEventLog(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Fail("cannot read " + path);
  std::string line;
  int n = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++n;
    JsonValue doc;
    std::string error;
    if (!JsonValue::Parse(line, &doc, &error)) {
      return Fail(path + " line " + std::to_string(n) +
                  " does not parse: " + error);
    }
    for (const char* key : {"ts_us", "level", "component", "event"}) {
      if (doc.Find(key) == nullptr) {
        return Fail(path + " line " + std::to_string(n) + " misses '" +
                    std::string(key) + "'");
      }
    }
  }
  if (n == 0) return Fail(path + " is empty");
  std::fprintf(stderr, "[trace-check] %s OK: %d event(s)\n", path.c_str(), n);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const wimpi::CommandLine cli(argc, argv);
  if (cli.positional().empty()) {
    std::fprintf(stderr,
                 "usage: wimpi_trace_check <trace.json> [--events <path>]\n");
    return 2;
  }
  const std::string trace_path = cli.positional()[0];
  const std::string events_path = cli.GetString("events", "");

  if (!CheckTrace(trace_path)) return 1;
  if (!events_path.empty() && !CheckEventLog(events_path)) return 1;
  return 0;
}
