// Validates an exported distributed trace (and optionally an event log):
// the CI smoke gate behind `bench_table3_sf10 --trace/--events` and
// `bench_chaos --trace`. Checks that the JSON parses, that every span's
// parent resolves inside the same trace, that retry attempts chain to the
// attempt they retried, that every flow arrow has both ends, and that each
// event-log line is valid JSON. Fine-grained recovery traces get three
// more causality checks: every cluster.steal instant must hang off the
// thief's stolen segment (or its partition span), every steal instant must
// have a matching victim->thief flow arrow, and per partition the
// cluster.ckpt "morsels" args must sum to the partition span's morsel
// count — the trace-level form of the checkpoint invariant (every morsel
// acknowledged exactly once). Exits nonzero with a message on the first
// structural problem, so a refactor that silently drops spans or breaks
// causality fails the build.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/json.h"

namespace {

using wimpi::JsonValue;

uint64_t HexField(const JsonValue& args, const char* key) {
  const JsonValue* v = args.Find(key);
  if (v == nullptr || !v->is_string()) return 0;
  return std::strtoull(v->AsString().c_str(), nullptr, 16);
}

bool Fail(const std::string& msg) {
  std::fprintf(stderr, "[trace-check] FAIL: %s\n", msg.c_str());
  return false;
}

bool CheckTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Fail("cannot read " + path);
  std::ostringstream text;
  text << in.rdbuf();

  JsonValue doc;
  std::string error;
  if (!JsonValue::Parse(text.str(), &doc, &error)) {
    return Fail(path + " does not parse: " + error);
  }
  const JsonValue* events = doc.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return Fail(path + " has no traceEvents array");
  }

  // Everything the fine-grained causality checks need about one span.
  struct SpanInfo {
    std::string cat;
    int partition = -1;
    int morsels = -1;
    bool stolen = false;
  };

  // First pass: collect every span id per trace (plus the category /
  // partition / morsel args the fine-grained checks consume).
  std::map<uint64_t, std::set<uint64_t>> spans_by_trace;
  std::map<std::pair<uint64_t, uint64_t>, SpanInfo> span_info;
  std::map<std::string, int> flow_sides;  // "s"/"f" balance per flow id
  // (trace, partition) -> summed cluster.ckpt morsels / partition span's
  // declared morsel count.
  std::map<std::pair<uint64_t, int>, int> ckpt_sum;
  std::map<std::pair<uint64_t, int>, int> partition_morsels;
  struct StealRef {
    uint64_t trace = 0;
    uint64_t parent = 0;
    int partition = -1;
  };
  std::vector<StealRef> steal_refs;
  int spans = 0, attempts = 0, faults = 0, steals = 0, ckpts = 0;
  int steal_flow_starts = 0;
  for (const JsonValue& e : events->AsArray()) {
    if (!e.is_object()) return Fail("non-object trace event");
    const std::string ph = e.GetString("ph", "");
    if (ph == "M") continue;  // metadata
    const JsonValue* args = e.Find("args");
    const uint64_t trace = args != nullptr ? HexField(*args, "trace") : 0;
    const uint64_t span = args != nullptr ? HexField(*args, "span") : 0;
    const std::string cat = e.GetString("cat", "");
    if (span != 0) {
      spans_by_trace[trace].insert(span);
      SpanInfo info;
      info.cat = cat;
      if (args != nullptr) {
        info.partition =
            static_cast<int>(args->GetDouble("partition", -1));
        info.morsels = static_cast<int>(args->GetDouble("morsels", -1));
        const JsonValue* st = args->Find("stolen");
        info.stolen = st != nullptr && st->AsBool();
      }
      span_info[{trace, span}] = info;
      if (cat == "cluster.partition" && info.partition >= 0 &&
          info.morsels >= 0) {
        partition_morsels[{trace, info.partition}] = info.morsels;
      }
    }
    if (ph == "X") ++spans;
    if (cat == "cluster.attempt") ++attempts;
    if (cat == "cluster.fault") ++faults;
    if (cat == "cluster.steal") {
      ++steals;
      StealRef ref;
      ref.trace = trace;
      ref.parent = args != nullptr ? HexField(*args, "parent") : 0;
      ref.partition =
          args != nullptr
              ? static_cast<int>(args->GetDouble("partition", -1))
              : -1;
      steal_refs.push_back(ref);
    }
    if (cat == "cluster.ckpt" && args != nullptr) {
      ++ckpts;
      ckpt_sum[{trace, static_cast<int>(args->GetDouble("partition", -1))}] +=
          static_cast<int>(args->GetDouble("morsels", 0));
    }
    if (ph == "s" || ph == "f") {
      const JsonValue* id = e.Find("id");
      if (id == nullptr || !id->is_string()) {
        return Fail("flow event without id");
      }
      flow_sides[id->AsString()] += ph == "s" ? 1 : -1;
      if (ph == "s" && e.GetString("name", "") == "steal") {
        ++steal_flow_starts;
      }
    }
  }
  if (spans == 0) return Fail(path + " contains no spans");
  if (attempts == 0) return Fail(path + " contains no cluster.attempt spans");

  // Second pass: every parent reference must resolve within its trace.
  int orphans = 0;
  for (const JsonValue& e : events->AsArray()) {
    const JsonValue* args = e.Find("args");
    if (args == nullptr) continue;
    const uint64_t trace = HexField(*args, "trace");
    const uint64_t parent = HexField(*args, "parent");
    if (parent == 0) continue;
    if (spans_by_trace[trace].count(parent) == 0) {
      ++orphans;
      std::fprintf(stderr,
                   "[trace-check] orphan: event '%s' parent %llx not in "
                   "trace %llx\n",
                   e.GetString("name", "?").c_str(),
                   static_cast<unsigned long long>(parent),
                   static_cast<unsigned long long>(trace));
    }
  }
  if (orphans > 0) {
    return Fail(std::to_string(orphans) + " orphaned parent reference(s)");
  }
  for (const auto& [id, balance] : flow_sides) {
    if (balance != 0) return Fail("unbalanced flow id " + id);
  }

  // Fine-grained causality: each steal instant hangs off the thief's
  // stolen attempt span (or the partition span when the stolen range was
  // folded into a larger segment), and each steal has its flow arrow.
  for (const StealRef& s : steal_refs) {
    const auto it = span_info.find({s.trace, s.parent});
    if (it == span_info.end()) {
      return Fail("cluster.steal parent does not resolve");
    }
    const SpanInfo& parent = it->second;
    const bool ok_attempt = parent.cat == "cluster.attempt" &&
                            parent.stolen && parent.partition == s.partition;
    const bool ok_partition =
        parent.cat == "cluster.partition" && parent.partition == s.partition;
    if (!ok_attempt && !ok_partition) {
      return Fail("cluster.steal for partition " +
                  std::to_string(s.partition) +
                  " hangs off a non-stolen span (cat '" + parent.cat + "')");
    }
  }
  if (steals != steal_flow_starts) {
    return Fail(std::to_string(steals) + " cluster.steal instant(s) but " +
                std::to_string(steal_flow_starts) +
                " steal flow arrow(s): victim->thief link missing");
  }

  // Trace-level checkpoint invariant: in a trace that checkpoints at all,
  // each partition's published morsels must sum to the partition span's
  // declared morsel count — no morsel acknowledged twice or dropped.
  for (const auto& [key, declared] : partition_morsels) {
    bool trace_has_ckpts = false;
    for (const auto& [ck_key, sum] : ckpt_sum) {
      if (ck_key.first == key.first && sum > 0) trace_has_ckpts = true;
    }
    if (!trace_has_ckpts) continue;  // retry-mode trace: no checkpoints
    const auto it = ckpt_sum.find(key);
    const int published = it == ckpt_sum.end() ? 0 : it->second;
    if (published != declared) {
      return Fail("partition " + std::to_string(key.second) +
                  ": checkpoints acknowledge " + std::to_string(published) +
                  " morsels, span declares " + std::to_string(declared));
    }
  }

  std::fprintf(stderr,
               "[trace-check] %s OK: %d spans (%d attempts, %d faults, "
               "%d steals, %d ckpts), %zu trace(s), %zu flow(s)\n",
               path.c_str(), spans, attempts, faults, steals, ckpts,
               spans_by_trace.size(), flow_sides.size());
  return true;
}

bool CheckEventLog(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Fail("cannot read " + path);
  std::string line;
  int n = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++n;
    JsonValue doc;
    std::string error;
    if (!JsonValue::Parse(line, &doc, &error)) {
      return Fail(path + " line " + std::to_string(n) +
                  " does not parse: " + error);
    }
    for (const char* key : {"ts_us", "level", "component", "event"}) {
      if (doc.Find(key) == nullptr) {
        return Fail(path + " line " + std::to_string(n) + " misses '" +
                    std::string(key) + "'");
      }
    }
  }
  if (n == 0) return Fail(path + " is empty");
  std::fprintf(stderr, "[trace-check] %s OK: %d event(s)\n", path.c_str(), n);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const wimpi::CommandLine cli(argc, argv);
  if (cli.positional().empty()) {
    std::fprintf(stderr,
                 "usage: wimpi_trace_check <trace.json> [--events <path>]\n");
    return 2;
  }
  const std::string trace_path = cli.positional()[0];
  const std::string events_path = cli.GetString("events", "");

  if (!CheckTrace(trace_path)) return 1;
  if (!events_path.empty() && !CheckEventLog(events_path)) return 1;
  return 0;
}
