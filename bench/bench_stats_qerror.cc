// Plan-quality bench (DESIGN.md §13): runs all 22 TPC-H queries with
// column statistics collected and a cardinality estimator installed, and
// records the resulting Q-error residuals plus sketch-accuracy checks in a
// bench artifact. Two hard properties are enforced, exiting nonzero:
//   * every answer with stats collection + cardinality capture enabled is
//     bit-identical to the same plan run on the seed path (no estimator);
//   * the artifact's series are fully deterministic (counts and ratios
//     derived from modeled execution, never wall time), so CI can gate
//     them at the default tolerance via wimpi_stats_check.
//
// Artifact (--json=<path>, unit "ratio"):
//   series "cardinality": per query Q<n>.qerror.max / .qerror.geomean /
//     .ops.estimated / .ops.recorded, plus cross-query per-operator-class
//     aggregates class.<cls>.qerror.max / .ops;
//   series "sketch": HLL NDV relative errors and equi-depth histogram
//     rank errors on representative lineitem columns (uniform-ish keys,
//     skewed l_orderkey, low-NDV l_returnflag).
//
//   ./bench/bench_stats_qerror [--physical-sf 0.01] [--threads 1]
//                              [--sampled] [--json out.json]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench_util.h"
#include "common/cli.h"
#include "common/table_printer.h"
#include "engine/executor.h"
#include "obs/residual.h"
#include "stats/registry.h"
#include "tpch/queries.h"

namespace {

using wimpi::stats::ColumnStats;

// Exact distinct count of a column (over dictionary codes for strings —
// the same domain the HLL sketch sees).
int64_t ExactNdv(const wimpi::storage::Column& col) {
  const int64_t n = col.size();
  switch (col.type()) {
    case wimpi::storage::DataType::kInt64: {
      std::unordered_set<int64_t> s(col.I64Data(), col.I64Data() + n);
      return static_cast<int64_t>(s.size());
    }
    case wimpi::storage::DataType::kFloat64: {
      std::unordered_set<double> s(col.F64Data(), col.F64Data() + n);
      return static_cast<int64_t>(s.size());
    }
    default: {
      std::unordered_set<int32_t> s(col.I32Data(), col.I32Data() + n);
      return static_cast<int64_t>(s.size());
    }
  }
}

double ValueAt(const wimpi::storage::Column& col, int64_t row) {
  switch (col.type()) {
    case wimpi::storage::DataType::kInt64:
      return static_cast<double>(col.I64Data()[row]);
    case wimpi::storage::DataType::kFloat64:
      return col.F64Data()[row];
    default:
      return static_cast<double>(col.I32Data()[row]);
  }
}

// Worst rank error of the histogram over a quantile grid: for each q the
// histogram's Quantile(q) is mapped back through the *exact* CDF of the
// column; a perfect histogram lands within one point mass of q.
double MaxQuantileRankError(const wimpi::storage::Column& col,
                            const ColumnStats& cs) {
  const int64_t n = col.size();
  if (n == 0 || cs.histogram.empty()) return 1;
  std::vector<double> sorted(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) sorted[static_cast<size_t>(i)] = ValueAt(col, i);
  std::sort(sorted.begin(), sorted.end());
  double worst = 0;
  for (int i = 1; i <= 9; ++i) {
    const double q = i / 10.0;
    const double v = cs.histogram.Quantile(q);
    // Exact CDF bracket of v: rank error is 0 when q lies inside
    // [P(x < v), P(x <= v)] (a point mass at v legitimately covers the
    // whole span), else the distance to the nearest edge.
    const double lt =
        static_cast<double>(std::lower_bound(sorted.begin(), sorted.end(), v) -
                            sorted.begin()) /
        static_cast<double>(n);
    const double le =
        static_cast<double>(std::upper_bound(sorted.begin(), sorted.end(), v) -
                            sorted.begin()) /
        static_cast<double>(n);
    const double err = q < lt ? lt - q : (q > le ? q - le : 0);
    worst = std::max(worst, err);
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  using wimpi::TablePrinter;
  const wimpi::CommandLine cli(argc, argv);
  const double physical_sf = cli.GetDouble("physical-sf", 0.01);
  const int threads = static_cast<int>(cli.GetInt("threads", 1));
  const bool sampled = cli.GetBool("sampled", false);
  const std::string json_path = cli.GetString("json", "");

  const wimpi::engine::Database db = wimpi::bench::LoadDb(physical_sf);
  const std::vector<int> queries = wimpi::bench::AllQueryNumbers();

  // ---- Phase 0: seed-path reference answers (no estimator) ----
  std::map<int, uint64_t> reference_checksum;
  for (const int q : queries) {
    wimpi::engine::Executor ex;
    ex.set_num_threads(threads);
    const wimpi::exec::Relation r = ex.Run([&](wimpi::exec::QueryStats* s) {
      return wimpi::tpch::RunQuery(q, db, s);
    });
    reference_checksum[q] = wimpi::bench::RelationChecksum(r);
  }

  // ---- Phase 1: collect statistics ----
  wimpi::stats::StatsRegistry registry;
  wimpi::stats::StatsBuildOptions build_opts;
  if (sampled) build_opts.scan_stride = 16;
  registry.CollectDatabase(db, build_opts);

  // ---- Phase 2: the same queries with cardinality capture armed ----
  int64_t mismatches = 0;
  std::map<int, wimpi::obs::CardinalityReport> reports;
  for (const int q : queries) {
    wimpi::engine::Executor ex;
    ex.set_num_threads(threads);
    ex.set_cardinality_estimator(&registry);
    wimpi::exec::QueryStats stats;
    const wimpi::exec::Relation r = ex.Run(
        [&](wimpi::exec::QueryStats* s) {
          return wimpi::tpch::RunQuery(q, db, s);
        },
        &stats);
    if (wimpi::bench::RelationChecksum(r) != reference_checksum[q]) {
      ++mismatches;
      std::fprintf(stderr,
                   "ANSWER MISMATCH: Q%d differs with the estimator "
                   "installed\n",
                   q);
    }
    reports[q] =
        wimpi::obs::CardinalityResiduals(stats, "Q" + std::to_string(q));
  }

  // ---- Phase 3: sketch accuracy on representative lineitem columns ----
  const wimpi::storage::Table& li = db.table("lineitem");
  const wimpi::stats::TableStats* li_stats = registry.Find("lineitem");
  struct SketchCheck {
    std::string column;
    double ndv_rel_err = 0;
    double quantile_rank_err = -1;  // numeric columns only
  };
  std::vector<SketchCheck> sketch_checks;
  for (const std::string& col_name :
       {std::string("l_orderkey"), std::string("l_partkey"),
        std::string("l_quantity"), std::string("l_extendedprice"),
        std::string("l_shipdate"), std::string("l_returnflag")}) {
    const wimpi::storage::Column& col = li.column(col_name);
    const ColumnStats* cs = li_stats->Find(col_name);
    SketchCheck check;
    check.column = col_name;
    const double exact = static_cast<double>(ExactNdv(col));
    check.ndv_rel_err = exact > 0 ? std::abs(cs->ndv - exact) / exact : 0;
    if (cs->numeric()) check.quantile_rank_err = MaxQuantileRankError(col, *cs);
    sketch_checks.push_back(std::move(check));
  }

  // ---- Report ----
  std::printf("\nCardinality Q-error per query (SF %.3g, %d thread%s%s)\n\n",
              physical_sf, threads, threads == 1 ? "" : "s",
              sampled ? ", sampled stats" : "");
  TablePrinter t({"Query", "Ops est/rec", "Max Q", "Geomean Q", "Worst class"});
  std::map<std::string, double> class_max;
  std::map<std::string, double> class_ops;
  for (const auto& [q, rep] : reports) {
    t.AddRow({"Q" + std::to_string(q),
              std::to_string(rep.estimated) + "/" + std::to_string(rep.recorded),
              TablePrinter::Fixed(rep.max_q, 2),
              TablePrinter::Fixed(rep.geomean_q, 2),
              rep.classes.empty() ? "-" : rep.classes.front().op_class});
    for (const auto& c : rep.classes) {
      class_max["class." + c.op_class] =
          std::max(class_max["class." + c.op_class], c.max_q);
      class_ops["class." + c.op_class] += c.ops;
    }
  }
  t.Print(std::cout);

  std::printf("\nSketch accuracy (lineitem)\n\n");
  TablePrinter st({"Column", "NDV rel err", "Quantile rank err"});
  for (const auto& c : sketch_checks) {
    st.AddRow({c.column, TablePrinter::Fixed(c.ndv_rel_err, 4),
               c.quantile_rank_err < 0
                   ? "-"
                   : TablePrinter::Fixed(c.quantile_rank_err, 4)});
  }
  st.Print(std::cout);

  // ---- Machine-readable artifact ----
  if (!json_path.empty()) {
    wimpi::bench::RunArtifact artifact =
        wimpi::bench::MakeArtifact("stats_qerror", physical_sf);
    artifact.unit = "ratio";
    auto& card = artifact.rows["cardinality"];
    card["answer_mismatches"] = static_cast<double>(mismatches);
    for (const auto& [q, rep] : reports) {
      const std::string p = "Q" + std::to_string(q);
      card[p + ".qerror.max"] = rep.max_q;
      card[p + ".qerror.geomean"] = rep.geomean_q;
      card[p + ".ops.estimated"] = static_cast<double>(rep.estimated);
      card[p + ".ops.recorded"] = static_cast<double>(rep.recorded);
    }
    for (const auto& [cls, v] : class_max) card[cls + ".qerror.max"] = v;
    for (const auto& [cls, v] : class_ops) card[cls + ".ops"] = v;
    auto& sketch = artifact.rows["sketch"];
    for (const auto& c : sketch_checks) {
      sketch["lineitem." + c.column + ".ndv_rel_err"] = c.ndv_rel_err;
      if (c.quantile_rank_err >= 0) {
        sketch["lineitem." + c.column + ".quantile_rank_err"] =
            c.quantile_rank_err;
      }
    }
    if (!wimpi::bench::WriteArtifact(json_path, artifact)) return 1;
    std::printf("\nWrote artifact to %s\n", json_path.c_str());
  }

  if (mismatches != 0) {
    std::fprintf(stderr,
                 "FAIL: %lld answers differed with stats collection on\n",
                 static_cast<long long>(mismatches));
    return 1;
  }
  return 0;
}
