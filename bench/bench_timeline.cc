// Roofline-timeline benchmark and overhead A/B (ISSUE #10): runs all 22
// TPC-H queries with the timeline sampler attached (or detached with
// --off), slices each query's window out of the sampled series, and
// reports the roofline verdicts next to what the cost model predicts.
//
// Three jobs, mirroring the flight-recorder bench conventions:
//   * Overhead A/B: run once with --off and once without, write --json
//     artifacts, and gate mean latency via
//       wimpi_bench_compare off.json on.json --only mean_latency --wall-tol T
//     (the sampler must cost <= a few percent at the default 1 ms period).
//   * Deterministic model rows: series "model:<profile>" carries each
//     query's bandwidth-bound verdict and bandwidth-op fraction on the
//     fixed Table I profiles — byte-stable across hosts, gated against the
//     committed baseline at the default tolerance (like BENCH_stats.json).
//   * --dump <path>: JSONL consumed by wimpi_timeline_check — a meta line,
//     then per query a summary line (modeled vs measured class, agreement
//     tallies) followed by the query's timeline header/interval lines.
//
// Answers are checksummed every lap: a sampler that changes any answer bit
// fails the bench (the test suite enforces the same at SF 0.01).
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/cli.h"
#include "common/json.h"
#include "common/table_printer.h"
#include "engine/executor.h"
#include "hw/cost_model.h"
#include "hw/host_anchor.h"
#include "hw/profile.h"
#include "obs/clock.h"
#include "obs/timeline/roofline.h"
#include "obs/timeline/sampler.h"
#include "tpch/queries.h"

namespace {

namespace timeline = wimpi::obs::timeline;

struct QueryWindow {
  int64_t submit_us = 0;
  int64_t finish_us = 0;
  double wall_seconds = 0;  // summed over laps
  uint64_t checksum = 0;
  wimpi::exec::QueryStats stats;  // physical-SF counters (lap 0)
};

}  // namespace

int main(int argc, char** argv) {
  using wimpi::TablePrinter;
  const wimpi::CommandLine cli(argc, argv);
  const double physical_sf = cli.GetDouble("physical-sf", 0.01);
  const double model_sf = cli.GetDouble("model-sf", 1.0);
  const int threads = static_cast<int>(cli.GetInt("threads", 4));
  const int laps = static_cast<int>(cli.GetInt("laps", 3));
  const int64_t period_us = cli.GetInt("period-us", 1000);
  const int64_t morsel_rows = cli.GetInt("morsel-rows", 64 * 1024);
  const bool off = cli.GetBool("off", false);
  const std::string json_path = cli.GetString("json", "");
  const std::string dump_path = cli.GetString("dump", "");

  const wimpi::engine::Database db = wimpi::bench::LoadDb(physical_sf);
  const std::vector<int> queries = wimpi::bench::AllQueryNumbers();

  // ---- Sampler on/off ----
  timeline::TimelineSampler& sampler = timeline::TimelineSampler::Global();
  bool sampler_on = false;
  if (!off) {
    timeline::SamplerOptions sopts;
    sopts.period_us = period_us;
    sampler_on = sampler.Start(sopts);
    if (!sampler_on) {
      std::fprintf(stderr, "timeline sampler refused to start: %s\n",
                   sampler.note().c_str());
    }
  }

  // ---- Run all queries x laps under the sampler ----
  std::map<int, QueryWindow> windows;
  double wall_seconds = 0;
  int64_t mismatches = 0;
  for (const int q : queries) {
    QueryWindow& w = windows[q];
    for (int lap = 0; lap < laps; ++lap) {
      wimpi::engine::Executor ex;
      ex.set_num_threads(threads);
      ex.set_morsel_rows(morsel_rows);
      wimpi::exec::QueryStats stats;
      const int64_t start = wimpi::obs::NowMicros();
      const wimpi::exec::Relation r = ex.Run(
          [&](wimpi::exec::QueryStats* s) {
            return wimpi::tpch::RunQuery(q, db, s);
          },
          &stats);
      const int64_t finish = wimpi::obs::NowMicros();
      w.wall_seconds += static_cast<double>(finish - start) * 1e-6;
      const uint64_t sum = wimpi::bench::RelationChecksum(r);
      if (lap == 0) {
        w.checksum = sum;
        w.stats = stats;
      } else if (sum != w.checksum) {
        ++mismatches;
        std::fprintf(stderr, "ANSWER MISMATCH: q%d lap %d differs\n", q, lap);
      }
      // The dump slices the last (warmed) lap.
      w.submit_us = start;
      w.finish_us = finish;
    }
    wall_seconds += w.wall_seconds;
  }
  const int64_t ticks = sampler.ticks();
  if (sampler_on) sampler.Stop();
  const double mean_latency =
      wall_seconds / (static_cast<double>(laps) * queries.size());

  // ---- Roofline verdicts: measured (host) and modeled (fixed profiles) ---
  const wimpi::hw::CostModel model;
  const wimpi::hw::HardwareProfile host = wimpi::hw::HostProfile();
  const timeline::RooflineSpec host_spec =
      timeline::RooflineSpec::FromProfile(host, threads, model);
  const std::vector<std::string> model_profiles = {"pi3b+", "op-gold"};

  std::map<int, timeline::RooflineSummary> summaries;  // measured, host SF
  std::map<int, timeline::QueryTimeline> slices;
  if (sampler_on) {
    for (const int q : queries) {
      const QueryWindow& w = windows[q];
      timeline::QueryTimeline tl = sampler.Slice(w.submit_us, w.finish_us);
      timeline::RooflineSummary s =
          timeline::BuildRooflineSummary(tl, host_spec);
      // Measured runs happened at physical SF on this host: cross-check
      // against the model's prediction for exactly that configuration.
      timeline::CrossCheckWithModel(model, host, w.stats, threads, &s);
      summaries[q] = std::move(s);
      slices[q] = std::move(tl);
    }
  }

  // Query-level modeled verdicts at the claim SF on the fixed profiles.
  std::map<std::string, std::map<int, std::pair<timeline::BoundClass, double>>>
      modeled;
  for (const std::string& pname : model_profiles) {
    const wimpi::hw::HardwareProfile& p = wimpi::hw::ProfileByName(pname);
    for (const int q : queries) {
      wimpi::exec::QueryStats scaled = windows[q].stats;
      scaled.Scale(model_sf / physical_sf);
      double frac = 0;
      const timeline::BoundClass c =
          timeline::ModeledQueryBound(model, p, scaled, p.threads, &frac);
      modeled[pname][q] = {c, frac};
    }
  }

  // ---- Report ----
  std::printf("\nTimeline bench: %zu queries x %d laps, %d threads, SF %.2f "
              "(sampler %s, period %lld us, %lld ticks)\n\n",
              queries.size(), laps, threads, physical_sf,
              sampler_on ? "on" : "off", static_cast<long long>(period_us),
              static_cast<long long>(ticks));
  TablePrinter t({"Query", "Wall (s)", "Modeled pi3b+", "bw frac",
                  "Measured", "GB/s", "Agree"});
  for (const int q : queries) {
    const auto& [mclass, mfrac] = modeled["pi3b+"][q];
    std::string measured = "-", gbps = "-", agree = "-";
    const auto it = summaries.find(q);
    if (it != summaries.end()) {
      const timeline::RooflineSummary& s = it->second;
      // Query-level measured verdict: saturation-fraction majority.
      measured = s.mean_gbps >= 0
                     ? (s.saturation_fraction > 0.5 ? "bandwidth" : "compute")
                     : "unknown";
      if (s.mean_gbps >= 0) gbps = TablePrinter::Fixed(s.mean_gbps, 2);
      if (s.agree + s.disagree > 0) {
        agree = std::to_string(s.agree) + "/" +
                std::to_string(s.agree + s.disagree);
      }
    }
    t.AddRow({"Q" + std::to_string(q),
              TablePrinter::Fixed(windows[q].wall_seconds /
                                      static_cast<double>(laps), 4),
              timeline::BoundClassName(mclass), TablePrinter::Fixed(mfrac, 3),
              measured, gbps, agree});
  }
  t.Print(std::cout);
  if (sampler_on) {
    std::printf("\nHost roofline: peak %.1f GB/s, achievable %.1f GB/s, "
                "saturation >= %.1f GB/s%s\n",
                host_spec.peak_gbps, host_spec.achievable_gbps,
                host_spec.saturation_gbps,
                sampler.note().empty()
                    ? ""
                    : (" (" + sampler.note() + ")").c_str());
  }

  // ---- Artifact ----
  if (!json_path.empty()) {
    wimpi::bench::RunArtifact artifact =
        wimpi::bench::MakeArtifact("timeline", model_sf);
    for (const std::string& pname : model_profiles) {
      auto& row = artifact.rows["model:" + pname];
      for (const int q : queries) {
        const auto& [c, frac] = modeled[pname][q];
        row["Q" + std::to_string(q) + ".bw_bound"] =
            c == timeline::BoundClass::kBandwidth ? 1.0 : 0.0;
        row["Q" + std::to_string(q) + ".bw_op_frac"] = frac;
      }
    }
    auto& row = artifact.rows["timeline"];
    row["answer_mismatches"] = static_cast<double>(mismatches);
    for (const int q : queries) {
      row["q" + std::to_string(q) + ".checksum"] =
          static_cast<double>(windows[q].checksum & 0xFFFFFFFFull);
    }
    // Measured (informational unless --wall-tol; CI gates mean_latency in
    // the off-vs-on comparison).
    row["wall_seconds"] = wall_seconds;
    row["mean_latency_seconds"] = mean_latency;
    if (!wimpi::bench::WriteArtifact(json_path, artifact)) return 1;
  }

  // ---- Dump for wimpi_timeline_check ----
  if (!dump_path.empty()) {
    std::ofstream out(dump_path, std::ios::trunc);
    if (!out.is_open()) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", dump_path.c_str());
      return 1;
    }
    {
      wimpi::JsonWriter w;
      w.BeginObject()
          .Key("type").String("meta")
          .Key("bench").String("timeline")
          .Key("sampler_on").Bool(sampler_on)
          .Key("period_us").Int(period_us)
          .Key("peak_gbps").Double(host_spec.peak_gbps)
          .Key("saturation_gbps").Double(host_spec.saturation_gbps)
          .EndObject();
      out << w.str() << '\n';
    }
    for (const int q : queries) {
      wimpi::JsonWriter w;
      w.BeginObject()
          .Key("type").String("summary")
          .Key("q").Int(q);
      {
        // Modeled verdict on the wimpy reference point: the dump's claim
        // is the paper's claim (Q1/Q6 memory-bound on the Pi at SF 1).
        const auto& [c, frac] = modeled["pi3b+"][q];
        w.Key("modeled").String(timeline::BoundClassName(c))
            .Key("bw_op_frac").Double(frac);
      }
      const auto it = summaries.find(q);
      if (it != summaries.end()) {
        const timeline::RooflineSummary& s = it->second;
        w.Key("measured")
            .String(s.mean_gbps >= 0
                        ? (s.saturation_fraction > 0.5 ? "bandwidth"
                                                       : "compute")
                        : "unknown")
            .Key("mean_gbps").Double(s.mean_gbps)
            .Key("saturation_fraction").Double(s.saturation_fraction)
            .Key("pipelines").Int(static_cast<int64_t>(s.pipelines.size()))
            .Key("agree").Int(s.agree)
            .Key("disagree").Int(s.disagree);
      } else {
        w.Key("measured").String("unknown");
      }
      w.EndObject();
      out << w.str() << '\n';
      const auto sit = slices.find(q);
      if (sit != slices.end()) out << sit->second.ToJsonl();
    }
  }

  if (mismatches != 0) {
    std::fprintf(stderr, "FAIL: %lld answers changed under the sampler\n",
                 static_cast<long long>(mismatches));
    return 1;
  }
  return 0;
}
