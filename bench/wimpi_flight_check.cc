// Validates a flight-recorder dump and slow-query log: the CI gate behind
// `bench_throughput --slo-us/--flight-dump/--slow-log` (ISSUE #7).
//
// Structural checks on the Chrome trace:
//   * it parses and contains at least one flight.query span;
//   * per query, lifecycle instants are causally ordered
//     (submit <= admit <= finish) and fall inside that query's span;
//   * flight.pipeline spans nest inside their query's span window.
// Checks on the slow-query log (--slow-log):
//   * every line is JSON with the full resource-report key set;
//   * wall >= queue wait, cpu == driver + worker cpu, and total CPU time
//     never exceeds threads x wall (with slack for clock granularity);
//   * at least one slow query's id also appears in the dump (each trigger
//     writes its own dump file — the base path, then ".1", ".2", ... —
//     and only the base path is checked here, so later slow queries may
//     live in sibling dumps; but the checked dump must cover its trigger);
//   * at least --min-slow entries (straggler injection must be visible).
// Checks on the exposition (--expo): parses via ExpositionFormat with
// HELP/TYPE metadata, and slo.* burn-rate/attainment samples are present.
//
// Exits nonzero with a [flight-check] message on the first violation.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/json.h"
#include "obs/export/exposition.h"

namespace {

using wimpi::JsonValue;

// Tolerance for lifecycle instants vs the query span they belong to: the
// span and its events are stamped by different NowMicros() calls.
constexpr double kWindowSlackUs = 2000;
// CPU time vs threads x wall slack: CLOCK_THREAD_CPUTIME_ID granularity
// plus scheduler noise on loaded hosts.
constexpr double kCpuSlack = 1.25;

bool Fail(const std::string& msg) {
  std::fprintf(stderr, "[flight-check] FAIL: %s\n", msg.c_str());
  return false;
}

struct QueryWindow {
  double start_us = 0;
  double end_us = 0;
  bool has_span = false;
  double submit_us = -1;
  double admit_us = -1;
  double finish_us = -1;
};

bool CheckDump(const std::string& path, std::set<int64_t>* dumped_queries) {
  std::ifstream in(path);
  if (!in) return Fail("cannot read " + path);
  std::ostringstream text;
  text << in.rdbuf();

  JsonValue doc;
  std::string error;
  if (!JsonValue::Parse(text.str(), &doc, &error)) {
    return Fail(path + " does not parse: " + error);
  }
  const JsonValue* events = doc.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return Fail(path + " has no traceEvents array");
  }

  // Pass 1: query spans establish each query's [submit, finish] window.
  std::map<int64_t, QueryWindow> windows;
  int query_spans = 0, pipeline_spans = 0, instants = 0;
  for (const JsonValue& e : events->AsArray()) {
    if (!e.is_object()) return Fail("non-object trace event");
    if (e.GetString("cat", "") != "flight.query") continue;
    if (e.GetString("ph", "") != "X") continue;
    const JsonValue* args = e.Find("args");
    if (args == nullptr) return Fail("flight.query span without args");
    const int64_t q = static_cast<int64_t>(args->GetDouble("query", -1));
    if (q < 0) return Fail("flight.query span without query id");
    QueryWindow& w = windows[q];
    w.start_us = e.GetDouble("ts", 0);
    w.end_us = w.start_us + e.GetDouble("dur", 0);
    w.has_span = true;
    ++query_spans;
    dumped_queries->insert(q);
  }
  if (query_spans == 0) return Fail(path + " contains no flight.query spans");

  // Pass 2: instants and pipeline spans against their query's window.
  for (const JsonValue& e : events->AsArray()) {
    const std::string cat = e.GetString("cat", "");
    const JsonValue* args = e.Find("args");
    const int64_t q =
        args != nullptr ? static_cast<int64_t>(args->GetDouble("query", 0))
                        : 0;
    if (q > 0) dumped_queries->insert(q);
    if (cat == "flight.event") {
      ++instants;
      const auto it = windows.find(q);
      // Events for queries whose span fell outside the dump window (e.g.
      // still running at dump time) have nothing to check against.
      if (it == windows.end() || !it->second.has_span) continue;
      const double ts = e.GetDouble("ts", 0);
      QueryWindow& w = it->second;
      const std::string name = e.GetString("name", "");
      // Lifecycle events must fall inside the span they define.
      if (name == "query.submit" || name == "query.admit" ||
          name == "query.finish" || name == "queue.enter" ||
          name == "morsel.batch" || name == "pipeline.start" ||
          name == "pipeline.end") {
        if (ts < w.start_us - kWindowSlackUs ||
            ts > w.end_us + kWindowSlackUs) {
          return Fail("event '" + name + "' of query " + std::to_string(q) +
                      " at ts " + std::to_string(ts) +
                      " outside its span [" + std::to_string(w.start_us) +
                      ", " + std::to_string(w.end_us) + "]");
        }
      }
      if (name == "query.submit") w.submit_us = ts;
      if (name == "query.admit") w.admit_us = ts;
      if (name == "query.finish" || name == "query.reject" ||
          name == "query.cancel_queued") {
        w.finish_us = ts;
      }
    } else if (cat == "flight.pipeline" && e.GetString("ph", "") == "X") {
      ++pipeline_spans;
      const auto it = windows.find(q);
      if (it == windows.end() || !it->second.has_span) continue;
      const double ts = e.GetDouble("ts", 0);
      const double end = ts + e.GetDouble("dur", 0);
      if (ts < it->second.start_us - kWindowSlackUs ||
          end > it->second.end_us + kWindowSlackUs) {
        return Fail("pipeline span of query " + std::to_string(q) +
                    " escapes its query span");
      }
    }
  }

  // Causal order per query: submit <= admit <= finish for every query
  // whose lifecycle is fully inside the dump.
  for (const auto& [q, w] : windows) {
    if (w.submit_us >= 0 && w.admit_us >= 0 && w.admit_us < w.submit_us) {
      return Fail("query " + std::to_string(q) + " admitted before submit");
    }
    if (w.admit_us >= 0 && w.finish_us >= 0 && w.finish_us < w.admit_us) {
      return Fail("query " + std::to_string(q) + " finished before admit");
    }
    if (w.submit_us >= 0 && w.finish_us >= 0 && w.finish_us < w.submit_us) {
      return Fail("query " + std::to_string(q) + " finished before submit");
    }
  }

  std::fprintf(stderr,
               "[flight-check] %s OK: %d query span(s), %d pipeline "
               "span(s), %d instant(s)\n",
               path.c_str(), query_spans, pipeline_spans, instants);
  return true;
}

bool CheckSlowLog(const std::string& path, int min_slow,
                  const std::set<int64_t>& dumped_queries, bool have_dump) {
  std::ifstream in(path);
  if (!in) return Fail("cannot read " + path);
  std::string line;
  int n = 0;
  int in_dump = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++n;
    JsonValue doc;
    std::string error;
    if (!JsonValue::Parse(line, &doc, &error)) {
      return Fail(path + " line " + std::to_string(n) +
                  " does not parse: " + error);
    }
    for (const char* key :
         {"ts_us", "query", "label", "status", "trigger", "wall_us",
          "queue_wait_us", "exec_us", "cpu_us", "driver_cpu_us",
          "worker_cpu_us", "pipelines", "tasks", "rows", "threads"}) {
      if (doc.Find(key) == nullptr) {
        return Fail(path + " line " + std::to_string(n) + " misses '" +
                    std::string(key) + "'");
      }
    }
    const double wall = doc.GetDouble("wall_us", 0);
    const double queue_wait = doc.GetDouble("queue_wait_us", 0);
    const double cpu = doc.GetDouble("cpu_us", 0);
    const double driver = doc.GetDouble("driver_cpu_us", 0);
    const double worker = doc.GetDouble("worker_cpu_us", 0);
    const double threads = doc.GetDouble("threads", 1);
    if (queue_wait > wall) {
      return Fail(path + " line " + std::to_string(n) +
                  ": queue wait exceeds wall time");
    }
    if (cpu != driver + worker) {
      return Fail(path + " line " + std::to_string(n) +
                  ": cpu_us != driver_cpu_us + worker_cpu_us");
    }
    // A query cannot burn more CPU than all its threads running for its
    // whole wall time (the accounting would be double-counting).
    if (cpu > threads * wall * kCpuSlack + 1000) {
      return Fail(path + " line " + std::to_string(n) + ": cpu " +
                  std::to_string(cpu) + "us exceeds " +
                  std::to_string(threads) + " threads x wall " +
                  std::to_string(wall) + "us");
    }
    const int64_t q = static_cast<int64_t>(doc.GetDouble("query", 0));
    if (dumped_queries.count(q) != 0) ++in_dump;
  }
  // Each trigger writes its own dump (base path, then ".1", ".2", ...);
  // only the base dump was parsed, so later slow queries may live in
  // sibling dumps — but at least one entry must appear in the checked
  // dump (a dump containing none of them means the trigger dumped the
  // wrong window).
  if (have_dump && n > 0 && in_dump == 0) {
    return Fail("no slow query has events in the flight dump");
  }
  if (n < min_slow) {
    return Fail(path + " has " + std::to_string(n) + " entr(ies), expected " +
                std::to_string(min_slow) + "+");
  }
  std::fprintf(stderr, "[flight-check] %s OK: %d slow quer(ies)\n",
               path.c_str(), n);
  return true;
}

bool CheckExposition(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Fail("cannot read " + path);
  std::ostringstream text;
  text << in.rdbuf();

  std::vector<wimpi::obs::ExpositionSample> samples;
  std::map<std::string, wimpi::obs::ExpositionMeta> meta;
  std::string error;
  if (!wimpi::obs::ExpositionFormat::Parse(text.str(), &samples, &meta,
                                           &error)) {
    return Fail(path + " does not parse: " + error);
  }
  int slo = 0, helped = 0;
  bool burn = false, attain = false;
  for (const auto& s : samples) {
    if (s.name.rfind("wimpi_slo_", 0) == 0) {
      ++slo;
      if (s.name.find("burn_rate") != std::string::npos) burn = true;
      if (s.name.find("attainment") != std::string::npos) attain = true;
    }
  }
  for (const auto& [name, m] : meta) {
    (void)name;
    if (!m.help.empty() && !m.type.empty()) ++helped;
  }
  if (slo == 0) return Fail(path + " has no slo.* samples");
  if (!burn) return Fail(path + " has no SLO burn-rate sample");
  if (!attain) return Fail(path + " has no SLO attainment sample");
  if (helped == 0) return Fail(path + " has no HELP/TYPE metadata");
  std::fprintf(stderr,
               "[flight-check] %s OK: %zu sample(s), %d slo sample(s), "
               "%d documented famil(ies)\n",
               path.c_str(), samples.size(), slo, helped);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const wimpi::CommandLine cli(argc, argv);
  if (cli.positional().empty()) {
    std::fprintf(stderr,
                 "usage: wimpi_flight_check <dump.json> [--slow-log <path>] "
                 "[--expo <path>] [--min-slow N]\n");
    return 2;
  }
  const std::string dump_path = cli.positional()[0];
  const std::string slow_path = cli.GetString("slow-log", "");
  const std::string expo_path = cli.GetString("expo", "");
  const int min_slow = static_cast<int>(cli.GetInt("min-slow", 1));

  std::set<int64_t> dumped_queries;
  if (!CheckDump(dump_path, &dumped_queries)) return 1;
  if (!slow_path.empty() &&
      !CheckSlowLog(slow_path, min_slow, dumped_queries, true)) {
    return 1;
  }
  if (!expo_path.empty() && !CheckExposition(expo_path)) return 1;
  return 0;
}
