// Ablation A1: the memory-pressure (microSD thrash) model on/off. The
// paper attributes the 4-node SF 10 cliff (Q1: 57.8s -> 0.678s at 24
// nodes) to virtual-memory thrashing; disabling the model shows how much
// of that cliff the spill penalty explains.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "cluster/wimpi_cluster.h"
#include "common/cli.h"
#include "common/table_printer.h"
#include "paper_data.h"

int main(int argc, char** argv) {
  using wimpi::TablePrinter;
  using namespace wimpi::bench;

  const wimpi::CommandLine cli(argc, argv);
  const double physical_sf = cli.GetDouble("physical-sf", 0.1);

  const wimpi::engine::Database db = LoadDb(physical_sf);
  const wimpi::hw::CostModel model;

  std::cout << "ABLATION: WIMPI SF 10 runtimes with and without the "
               "memory-pressure model (Q1/Q3/Q5)\n";
  TablePrinter t({"Nodes", "Q1 spill-on", "Q1 spill-off", "Q3 spill-on",
                  "Q3 spill-off", "Q5 spill-on", "Q5 spill-off",
                  "Q1 working set (GB)"});
  for (const int nodes : PaperClusterSizes()) {
    std::vector<std::string> row = {std::to_string(nodes)};
    double ws = 0;
    for (const int q : {1, 3, 5}) {
      wimpi::cluster::ClusterOptions on;
      on.num_nodes = nodes;
      on.sf_scale = 10.0 / physical_sf;
      const auto run_on =
          wimpi::cluster::WimpiCluster(db, on).Run(q, model).value();

      wimpi::cluster::ClusterOptions off = on;
      off.thrash_factor = 0.0;
      const auto run_off =
          wimpi::cluster::WimpiCluster(db, off).Run(q, model).value();

      row.push_back(TablePrinter::Fixed(run_on.total_seconds, 3));
      row.push_back(TablePrinter::Fixed(run_off.total_seconds, 3));
      if (q == 1) ws = run_on.max_working_set_bytes / 1e9;
    }
    row.push_back(TablePrinter::Fixed(ws, 2));
    t.AddRow(std::move(row));
  }
  t.Print(std::cout);
  std::cout << "\nReading: with spill off, small clusters look only "
               "proportionally slower; the cliff in Table III exists only "
               "because working sets exceed the 1 GB node memory, which is "
               "exactly the paper's §III-C4 diagnosis (disabled swap, "
               "microSD-bound paging).\n";
  return 0;
}
