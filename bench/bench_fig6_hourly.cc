// Reproduces Figure 6: runtimes normalized by hourly cost (the seven
// cloud instance types vs the Pi's electricity-only $0.0004/h).
#include <cstdio>
#include <iostream>

#include "analysis/metrics.h"
#include "bench_util.h"
#include "cluster/wimpi_cluster.h"
#include "common/cli.h"
#include "common/table_printer.h"
#include "paper_data.h"

int main(int argc, char** argv) {
  using wimpi::TablePrinter;
  using namespace wimpi::analysis;
  using namespace wimpi::bench;

  const wimpi::CommandLine cli(argc, argv);
  const double physical_sf = cli.GetDouble("physical-sf", 0.1);

  const wimpi::engine::Database db = LoadDb(physical_sf);
  const wimpi::hw::CostModel model;
  const auto cloud = wimpi::hw::CloudProfiles();

  // --- SF 1 ---
  const auto sf1_stats =
      CollectQueryStats(db, 1.0 / physical_sf, AllQueryNumbers());
  const auto sf1 = ModelRuntimes(sf1_stats, model);

  std::cout << "FIGURE 6 (left): hourly-cost-normalized improvement at SF 1 "
               "(single Pi; >1 means the Pi wins)\n";
  TablePrinter left({"Instance", "median", "min", "max"});
  double global_max = 0;
  for (const auto* p : cloud) {
    std::vector<double> imps;
    for (int q = 1; q <= 22; ++q) {
      imps.push_back(Improvement(sf1.at(q).at(p->name), ServerHourly(*p),
                                 sf1.at(q).at("pi3b+"), PiClusterHourly(1)));
    }
    auto mm = std::minmax_element(imps.begin(), imps.end());
    global_max = std::max(global_max, *mm.second);
    left.AddRow({p->name, TablePrinter::Multiplier(Median(imps)),
                 TablePrinter::Multiplier(*mm.first),
                 TablePrinter::Multiplier(*mm.second)});
  }
  left.Print(std::cout);
  std::printf("  max SF 1 improvement: %.0fx (paper: up to 10,000x; the Pi "
              "wins every query on every instance)\n",
              global_max);

  // --- SF 10 ---
  const auto& queries = PaperSf10Queries();
  std::cout << "\nFIGURE 6 (right): hourly-cost-normalized improvement at "
               "SF 10 (WIMPI-24 vs cloud)\n";
  const auto sf10_stats = CollectQueryStats(db, 10.0 / physical_sf, queries);
  const auto sf10 = ModelRuntimes(sf10_stats, model);

  wimpi::cluster::ClusterOptions opts;
  opts.num_nodes = 24;
  opts.sf_scale = 10.0 / physical_sf;
  const wimpi::cluster::WimpiCluster wimpi(db, opts);
  std::map<int, double> wimpi_time;
  for (const int q : queries) {
    wimpi_time[q] = wimpi.Run(q, model).value().total_seconds;
  }

  std::vector<std::string> header = {"Instance"};
  for (const int q : queries) header.push_back("Q" + std::to_string(q));
  TablePrinter right(header);
  double min_q13 = 1e18, max_any = 0;
  for (const auto* p : cloud) {
    std::vector<std::string> row = {p->name};
    for (const int q : queries) {
      const double imp =
          Improvement(sf10.at(q).at(p->name), ServerHourly(*p),
                      wimpi_time[q], PiClusterHourly(24));
      max_any = std::max(max_any, imp);
      if (q == 13) min_q13 = std::min(min_q13, imp);
      row.push_back(TablePrinter::Multiplier(imp));
    }
    right.AddRow(std::move(row));
  }
  right.Print(std::cout);
  std::printf("  max SF 10 improvement %.0fx (paper: up to 1,200x); worst "
              "Q13 improvement %.1fx (paper: still 3-10x even for Q13)\n",
              max_any, min_q13);
  return 0;
}
