// Validates a bench_timeline --dump file: the CI gate for the roofline
// timeline (ISSUE #10).
//
// Structural checks:
//   * the dump parses line-by-line and starts with a meta line carrying
//     the host roofline (peak GB/s);
//   * timestamps are monotone: every interval has t1 >= t0 and starts at
//     or after the previous interval of the same timeline block;
//   * every measured bandwidth sample respects physics: interval GB/s
//     never exceeds the host's peak x --bw-tol (a sampler computing
//     impossible bandwidth has broken counter differencing).
// Claim checks:
//   * each query listed in --require-q (default "1,6" — the paper's
//     memory-bound poster children) has a summary line whose modeled
//     class is known (the cost model must commit to a verdict);
//   * across summaries where the measured class is known, it matches the
//     modeled class on at least --agree-floor of them; same floor applied
//     to the per-pipeline agree/disagree tallies. On hosts without a PMU
//     the measured side is "unknown" and the floor is vacuously met —
//     the structural checks above still run on the degraded timeline.
//
// Exits nonzero with a [timeline-check] message on the first violation.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/json.h"

namespace {

using wimpi::JsonValue;

bool Fail(const std::string& msg) {
  std::fprintf(stderr, "[timeline-check] FAIL: %s\n", msg.c_str());
  return false;
}

std::vector<int> ParseIntList(const std::string& s) {
  std::vector<int> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::stoi(item));
  }
  return out;
}

struct Summary {
  std::string modeled = "unknown";
  std::string measured = "unknown";
  int agree = 0;
  int disagree = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const wimpi::CommandLine cli(argc, argv);
  if (cli.positional().empty()) {
    std::fprintf(stderr,
                 "usage: wimpi_timeline_check <dump.jsonl> [--bw-tol F] "
                 "[--agree-floor F] [--require-q 1,6]\n");
    return 2;
  }
  const std::string path = cli.positional()[0];
  const double bw_tol = cli.GetDouble("bw-tol", 1.5);
  const double agree_floor = cli.GetDouble("agree-floor", 0.5);
  const std::vector<int> require_q =
      ParseIntList(cli.GetString("require-q", "1,6"));

  std::ifstream in(path);
  if (!in) return !Fail("cannot read " + path);

  double peak_gbps = -1;
  bool have_meta = false;
  int headers = 0, intervals = 0;
  int64_t prev_t1 = 0;  // reset at each timeline header
  std::map<int, Summary> summaries;

  std::string line;
  int n = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++n;
    JsonValue doc;
    std::string error;
    if (!JsonValue::Parse(line, &doc, &error)) {
      return !Fail(path + " line " + std::to_string(n) +
                   " does not parse: " + error);
    }
    const std::string type = doc.GetString("type", "");
    if (type == "meta") {
      have_meta = true;
      peak_gbps = doc.GetDouble("peak_gbps", -1);
      if (peak_gbps <= 0) return !Fail("meta line has no positive peak_gbps");
    } else if (type == "summary") {
      if (!have_meta) return !Fail("summary before meta line");
      const int q = static_cast<int>(doc.GetDouble("q", -1));
      if (q < 1) return !Fail("summary line without query number");
      Summary& s = summaries[q];
      s.modeled = doc.GetString("modeled", "unknown");
      s.measured = doc.GetString("measured", "unknown");
      s.agree = static_cast<int>(doc.GetDouble("agree", 0));
      s.disagree = static_cast<int>(doc.GetDouble("disagree", 0));
    } else if (type == "header") {
      ++headers;
      prev_t1 = 0;
      const double start = doc.GetDouble("start_us", 0);
      const double end = doc.GetDouble("end_us", 0);
      if (end < start) {
        return !Fail("line " + std::to_string(n) +
                     ": timeline header runs backwards");
      }
    } else if (type == "interval") {
      ++intervals;
      const int64_t t0 = static_cast<int64_t>(doc.GetDouble("t0_us", 0));
      const int64_t t1 = static_cast<int64_t>(doc.GetDouble("t1_us", 0));
      if (t1 < t0) {
        return !Fail("line " + std::to_string(n) + ": interval [" +
                     std::to_string(t0) + ", " + std::to_string(t1) +
                     "] runs backwards");
      }
      if (t0 < prev_t1) {
        return !Fail("line " + std::to_string(n) +
                     ": interval starts before the previous one ended "
                     "(non-monotone timestamps)");
      }
      prev_t1 = t1;
      const JsonValue* g = doc.Find("gbps");
      if (g != nullptr) {
        const double gbps = g->AsDouble();
        if (gbps < 0 || gbps > peak_gbps * bw_tol) {
          return !Fail("line " + std::to_string(n) + ": " +
                       std::to_string(gbps) + " GB/s is outside [0, peak " +
                       std::to_string(peak_gbps) + " x " +
                       std::to_string(bw_tol) + "]");
        }
      }
    }
  }

  if (!have_meta) return !Fail(path + " has no meta line");
  for (const int q : require_q) {
    const auto it = summaries.find(q);
    if (it == summaries.end()) {
      return !Fail("required query Q" + std::to_string(q) +
                   " has no summary line");
    }
    if (it->second.modeled == "unknown") {
      return !Fail("Q" + std::to_string(q) +
                   ": cost model did not commit to a bound class");
    }
  }
  int known = 0, matched = 0, agree = 0, disagree = 0;
  for (const auto& [q, s] : summaries) {
    (void)q;
    agree += s.agree;
    disagree += s.disagree;
    if (s.measured == "unknown") continue;
    ++known;
    if (s.measured == s.modeled) ++matched;
  }
  if (known > 0 &&
      static_cast<double>(matched) / known < agree_floor) {
    return !Fail("measured bound class agrees with the model on only " +
                 std::to_string(matched) + "/" + std::to_string(known) +
                 " queries (floor " + std::to_string(agree_floor) + ")");
  }
  if (agree + disagree > 0 &&
      static_cast<double>(agree) / (agree + disagree) < agree_floor) {
    return !Fail("per-pipeline agreement " + std::to_string(agree) + "/" +
                 std::to_string(agree + disagree) + " is below the floor");
  }

  std::fprintf(stderr,
               "[timeline-check] %s OK: %zu summar(ies), %d timeline(s), "
               "%d interval(s), %d measured-class quer(ies)\n",
               path.c_str(), summaries.size(), headers, intervals, known);
  return 0;
}
