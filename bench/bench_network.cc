// Reproduces the Section II-C3 network measurement: an iperf-style
// transfer between two WIMPI nodes should see ~220 Mbps (the GbE port
// shares a bus with USB 2.0 on the Pi 3B+).
#include <cstdio>
#include <iostream>

#include "cluster/wimpi_cluster.h"
#include "common/cli.h"
#include "tpch/dbgen.h"

int main(int argc, char** argv) {
  const wimpi::CommandLine cli(argc, argv);
  const double sf = cli.GetDouble("physical-sf", 0.01);

  wimpi::tpch::GenOptions gen;
  gen.scale_factor = sf;
  const wimpi::engine::Database db = wimpi::tpch::GenerateDatabase(gen);

  wimpi::cluster::ClusterOptions opts;
  opts.num_nodes = 2;
  const wimpi::cluster::WimpiCluster wimpi(db, opts);

  std::cout << "iperf-style transfer between two WIMPI nodes (simulated):\n";
  for (const double mib : {1.0, 16.0, 128.0, 1024.0}) {
    const double bytes = mib * 1024 * 1024;
    const double s = wimpi.NetworkSeconds(bytes, 1);
    std::printf("  %7.0f MiB in %8.3f s  ->  %6.1f Mbps effective\n", mib, s,
                bytes * 8.0 / s / 1e6);
  }
  std::cout << "\nPaper measurement: ~220 Mbps between two nodes "
               "(~20% of GbE line rate due to the shared USB bus).\n";
  return 0;
}
