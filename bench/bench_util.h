#ifndef WIMPI_BENCH_BENCH_UTIL_H_
#define WIMPI_BENCH_BENCH_UTIL_H_

#include <map>
#include <string>
#include <vector>

#include "artifact.h"
#include "engine/database.h"
#include "exec/counters.h"
#include "exec/relation.h"
#include "hw/cost_model.h"
#include "hw/profile.h"

namespace wimpi::bench {

// Order- and bit-sensitive digest of a relation: shape, column names,
// types, and every value (doubles by bit pattern). Two relations digest
// equal iff the tests' ExpectRelationsIdentical would hold. Used by the
// benches that enforce bit-identical answers across execution modes
// (concurrent service, stats collection on/off).
uint64_t RelationChecksum(const exec::Relation& r);

// Generates a TPC-H database at `physical_sf`, logging progress to stderr.
engine::Database LoadDb(double physical_sf, uint64_t seed = 19921201);

// One physically-executed query: its recorded (and scaled) work counters
// plus the measured host wall time of the physical run. Wall seconds are
// NOT scaled — they describe the host run at physical SF, and land in
// artifacts as measured metrics (gated only with --wall-tol).
struct QueryRun {
  exec::QueryStats stats;
  double wall_seconds = 0;
};

// Executes each listed query once against `db`, scales the recorded work
// counters by `scale` (model SF / physical SF), and returns them together
// with the measured wall time of each physical execution.
std::map<int, QueryRun> CollectQueryStats(
    const engine::Database& db, double scale, const std::vector<int>& queries);

// Modeled runtime of each (query, profile) pair using all threads.
std::map<int, std::map<std::string, double>> ModelRuntimes(
    const std::map<int, QueryRun>& runs, const hw::CostModel& model);

// All 22 query numbers.
std::vector<int> AllQueryNumbers();

// Builds the standard runtime-bench artifact (schema in artifact.h): one
// series per hardware profile with metric "Q<n>" = modeled seconds, plus a
// "host" series with "Q<n>.wall_seconds" = measured wall time of the
// physical run. Callers may add further series before WriteArtifact.
RunArtifact RuntimesArtifact(
    const std::string& bench_name, double model_sf,
    const std::map<int, std::map<std::string, double>>& runtimes,
    const std::map<int, QueryRun>& runs);

}  // namespace wimpi::bench

#endif  // WIMPI_BENCH_BENCH_UTIL_H_
