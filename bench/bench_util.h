#ifndef WIMPI_BENCH_BENCH_UTIL_H_
#define WIMPI_BENCH_BENCH_UTIL_H_

#include <map>
#include <string>
#include <vector>

#include "engine/database.h"
#include "exec/counters.h"
#include "hw/cost_model.h"
#include "hw/profile.h"

namespace wimpi::bench {

// Generates a TPC-H database at `physical_sf`, logging progress to stderr.
engine::Database LoadDb(double physical_sf, uint64_t seed = 19921201);

// Executes each listed query once against `db`, scales the recorded work
// counters by `scale` (model SF / physical SF), and returns them.
std::map<int, exec::QueryStats> CollectQueryStats(
    const engine::Database& db, double scale, const std::vector<int>& queries);

// Modeled runtime of each (query, profile) pair using all threads.
std::map<int, std::map<std::string, double>> ModelRuntimes(
    const std::map<int, exec::QueryStats>& stats, const hw::CostModel& model);

// All 22 query numbers.
std::vector<int> AllQueryNumbers();

// Writes modeled runtimes as machine-readable JSON, one object per row
// (hardware profile or cluster size) keyed by query number:
//   {"bench":"table2_sf1","model_sf":1,"unit":"seconds",
//    "rows":{"pi3b+":{"1":2.27,"2":0.31,...},...}}
// Returns false (and logs to stderr) when the file cannot be written.
bool WriteRuntimesJson(
    const std::string& path, const std::string& bench_name, double model_sf,
    const std::map<std::string, std::map<int, double>>& rows);

}  // namespace wimpi::bench

#endif  // WIMPI_BENCH_BENCH_UTIL_H_
