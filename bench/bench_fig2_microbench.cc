// Reproduces Figure 2: CPU and memory microbenchmarks across all hardware
// comparison points. Kernels run natively on the host for grounding; the
// per-profile values come from the calibrated hardware model (the figure's
// subject is the *relative* standing of the Pi, which the model encodes).
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <thread>

#include "common/cli.h"
#include "common/table_printer.h"
#include "hw/cost_model.h"
#include "hw/profile.h"
#include "micro/kernels.h"
#include "micro/model.h"

int main(int argc, char** argv) {
  using wimpi::TablePrinter;
  const wimpi::CommandLine cli(argc, argv);
  const bool run_native = cli.GetBool("native", true);

  const wimpi::hw::CostModel cost_model;
  const wimpi::micro::MicrobenchModel model(cost_model);
  const auto& pi = wimpi::hw::PiProfile();

  if (run_native) {
    const int hc = std::max(
        1u, std::thread::hardware_concurrency());
    std::cout << "Host-native kernel runs (grounding):\n";
    const double whet1 = wimpi::micro::RunWhetstone(2000);
    const double whetN = wimpi::micro::RunWhetstoneAllCores(2000, hc);
    std::printf("  whetstone        : %8.0f MWIPS 1-core, %8.0f all (%d "
                "threads, %.1fx)\n",
                whet1, whetN, hc, whet1 > 0 ? whetN / whet1 : 0.0);
    const double dhry1 = wimpi::micro::RunDhrystone(2000);
    const double dhryN = wimpi::micro::RunDhrystoneAllCores(2000, hc);
    std::printf("  dhrystone        : %8.0f DMIPS 1-core, %8.0f all "
                "(%.1fx)\n",
                dhry1, dhryN, dhry1 > 0 ? dhryN / dhry1 : 0.0);
    const double prime1 = wimpi::micro::RunSysbenchPrime(20000, 10);
    const double primeN =
        wimpi::micro::RunSysbenchPrimeAllCores(20000, 10 * hc, hc);
    std::printf("  sysbench prime   : %8.3f s 1-core, %8.3f s all at %dx "
                "events (max_prime=20000)\n",
                prime1, primeN, hc);
    const double bw1 = wimpi::micro::RunMemoryBandwidth(256 << 20, 8);
    const double bwN =
        wimpi::micro::RunMemoryBandwidthAllCores((256 << 20) / hc, 8, hc);
    std::printf("  memory bandwidth : %8.2f GB/s 1-core, %8.2f GB/s all "
                "(%.1fx)\n",
                bw1, bwN, bw1 > 0 ? bwN / bw1 : 0.0);
    std::cout << "  (All-core kernels run natively on the engine thread "
                 "pool; the measured speedups anchor the figure's "
                 "near-linear independent-kernel scaling, in contrast to "
                 "the sublinear query scaling in bench_parallel_scaling.)"
              << "\n\n";
  }

  std::cout << "FIGURE 2a/2b: Whetstone MWIPS and Dhrystone DMIPS (modeled)\n";
  TablePrinter cpu({"Name", "MWIPS 1-core", "MWIPS all", "DMIPS 1-core",
                    "DMIPS all", "vs Pi (1-core)", "vs Pi (all)"});
  for (const auto& p : wimpi::hw::AllProfiles()) {
    cpu.AddRow({p.name, TablePrinter::Fixed(model.WhetstoneMwips(p, false), 0),
                TablePrinter::Fixed(model.WhetstoneMwips(p, true), 0),
                TablePrinter::Fixed(model.DhrystoneDmips(p, false), 0),
                TablePrinter::Fixed(model.DhrystoneDmips(p, true), 0),
                TablePrinter::Multiplier(model.WhetstoneMwips(p, false) /
                                         model.WhetstoneMwips(pi, false)),
                TablePrinter::Multiplier(model.WhetstoneMwips(p, true) /
                                         model.WhetstoneMwips(pi, true))});
  }
  cpu.Print(std::cout);
  std::cout << "Paper anchors: Pi single-core within 2-3x of op-e5, 5-6x of "
               "op-gold/m5.metal; all-core gap 10-90x.\n\n";

  std::cout << "FIGURE 2c: sysbench prime seconds (modeled; lower is "
               "better)\n";
  TablePrinter prime({"Name", "1-core (s)", "all cores (s)", "1-core vs Pi"});
  for (const auto& p : wimpi::hw::AllProfiles()) {
    prime.AddRow(
        {p.name, TablePrinter::Fixed(model.SysbenchPrimeSeconds(p, false), 2),
         TablePrinter::Fixed(model.SysbenchPrimeSeconds(p, true), 2),
         TablePrinter::Multiplier(model.SysbenchPrimeSeconds(pi, false) /
                                  model.SysbenchPrimeSeconds(p, false))});
  }
  prime.Print(std::cout);
  std::cout << "Paper anchor: Pi single-core nearly identical to op-e5; "
               "others 1.2-3.9x better.\n\n";

  std::cout << "FIGURE 2d: sysbench memory bandwidth GB/s (modeled)\n";
  TablePrinter mem({"Name", "1-core", "all cores", "all vs Pi"});
  for (const auto& p : wimpi::hw::AllProfiles()) {
    mem.AddRow({p.name,
                TablePrinter::Fixed(model.MemoryBandwidthGbps(p, false), 1),
                TablePrinter::Fixed(model.MemoryBandwidthGbps(p, true), 1),
                TablePrinter::Multiplier(model.MemoryBandwidthGbps(p, true) /
                                         model.MemoryBandwidthGbps(pi, true))});
  }
  mem.Print(std::cout);
  std::cout << "Paper anchors: single-core gap 5-11x, all-core gap 20-99x; "
               "24 Pi nodes ~ op-e5 / m4.10xlarge aggregate (48 GB/s).\n";
  return 0;
}
