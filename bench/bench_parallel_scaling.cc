// Measured multicore scaling of the engine against the cost model's
// prediction. The paper's Table II numbers imply MonetDB gains only ~3-5x
// from ~20 threads on sub-second queries; this bench runs the same plans
// natively at 1..N threads (morsel-parallel operators) and prints the
// measured speedup next to CostModel::ComputeScale for the build host, so
// the modeled scaling law has a measured all-core anchor.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/cli.h"
#include "common/table_printer.h"
#include "engine/executor.h"
#include "exec/aggregate.h"
#include "exec/exec_options.h"
#include "hw/cost_model.h"
#include "hw/host_anchor.h"
#include "tpch/queries.h"

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<int> ThreadCounts(int max_threads) {
  std::vector<int> counts;
  for (int t = 1; t < max_threads; t *= 2) counts.push_back(t);
  counts.push_back(max_threads);
  return counts;
}

}  // namespace

int main(int argc, char** argv) {
  using wimpi::TablePrinter;
  const wimpi::CommandLine cli(argc, argv);
  const double sf = cli.GetDouble("sf", 1.0);
  const int reps = static_cast<int>(cli.GetInt("reps", 3));
  const int hc =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  const int max_threads = static_cast<int>(cli.GetInt("threads", hc));

  const wimpi::engine::Database db = wimpi::bench::LoadDb(sf);
  const wimpi::hw::CostModel cost_model;
  const wimpi::hw::HardwareProfile host = wimpi::hw::HostProfile();
  const std::vector<int> counts = ThreadCounts(max_threads);

  // Workloads: the paper's scan-heavy Q6 and aggregation-heavy Q1, plus a
  // Q18-style high-cardinality aggregation (group by l_orderkey) that
  // stresses the thread-local table merge.
  struct Workload {
    std::string name;
    std::function<int64_t(wimpi::exec::QueryStats*)> run;
  };
  std::vector<Workload> workloads;
  for (const int q : {1, 6}) {
    workloads.push_back(
        {"Q" + std::to_string(q), [&db, q](wimpi::exec::QueryStats* s) {
           return wimpi::tpch::RunQuery(q, db, s).num_rows();
         }});
  }
  workloads.push_back(
      {"Q18-style agg", [&db](wimpi::exec::QueryStats* s) {
         using wimpi::exec::AggFn;
         return wimpi::exec::HashAggregate(
                    wimpi::exec::ColumnSource(db.table("lineitem")),
                    {"l_orderkey"},
                    {{AggFn::kSum, "l_quantity", "sum_qty"}}, s)
             .num_rows();
       }});

  std::printf("Engine scaling at SF %.2f, best of %d reps, host has %d "
              "hardware threads.\n\n",
              sf, reps, hc);

  // Artifact rows: series = workload, metrics "t<threads>.seconds" /
  // "t<threads>.speedup" (measured, noisy) and "t<threads>.model_scale"
  // (CostModel::ComputeScale — deterministic, so named without the
  // measured-metric markers and gated by the default tolerance).
  std::map<std::string, std::map<std::string, double>> artifact_rows;

  int64_t sink = 0;
  for (const auto& w : workloads) {
    auto measure = [&](int threads) {
      wimpi::engine::Executor ex;
      ex.set_num_threads(threads);
      double best = -1;
      for (int r = 0; r < reps; ++r) {
        const double start = NowSeconds();
        sink += ex.Run(w.run);
        const double s = NowSeconds() - start;
        if (best < 0 || s < best) best = s;
      }
      return best;
    };
    const auto points =
        wimpi::hw::AnchorScaling(cost_model, host, counts, measure);

    std::cout << w.name << " (measured vs cost-model all-core scaling):\n";
    TablePrinter t({"Threads", "Seconds", "Measured speedup",
                    "Modeled speedup"});
    for (const auto& pt : points) {
      t.AddRow({std::to_string(pt.threads),
                TablePrinter::Fixed(pt.measured_seconds, 4),
                TablePrinter::Multiplier(pt.measured_speedup),
                TablePrinter::Multiplier(pt.modeled_speedup)});
      const std::string key = "t" + std::to_string(pt.threads);
      auto& row = artifact_rows[w.name];
      row[key + ".seconds"] = pt.measured_seconds;
      row[key + ".speedup"] = pt.measured_speedup;
      row[key + ".model_scale"] = pt.modeled_speedup;
    }
    t.Print(std::cout);
    std::cout << "\n";
  }
  if (sink == -1) std::cout << "";  // keep the result rows alive

  std::cout << "The modeled column is CostModel::ComputeScale on the host "
               "pseudo-profile (sublinear law calibrated on the paper's "
               "Table II); microbenchmark kernels scale near-linearly "
               "instead — see bench_fig2_microbench --native=true.\n";

  // --- Machine-readable artifact (--json=path) ---
  const std::string json_path = cli.GetString("json", "");
  if (!json_path.empty()) {
    wimpi::bench::RunArtifact artifact =
        wimpi::bench::MakeArtifact("parallel_scaling", sf);
    artifact.rows = std::move(artifact_rows);
    if (!wimpi::bench::WriteArtifact(json_path, artifact)) return 1;
  }
  return 0;
}
