// Reproduces Table I: hardware specifications of every comparison point.
#include <cstdio>
#include <iostream>

#include "common/table_printer.h"
#include "hw/profile.h"

int main() {
  using wimpi::TablePrinter;
  std::cout << "TABLE I: Hardware Specifications\n";
  TablePrinter t({"Category", "Name", "CPU", "Frequency", "Cores", "LLC",
                  "MSRP", "Hourly", "TDP"});
  std::string last_category;
  for (const auto& p : wimpi::hw::AllProfiles()) {
    if (!last_category.empty() && p.category != last_category) {
      t.AddSeparator();
    }
    last_category = p.category;
    char freq[32], llc[32], msrp[32], hourly[32], tdp[32];
    std::snprintf(freq, sizeof(freq), "%.1f GHz", p.freq_ghz);
    if (p.llc_bytes >= 1024 * 1024) {
      std::snprintf(llc, sizeof(llc), "%.5g MB",
                    p.llc_bytes / (1024.0 * 1024.0));
    } else {
      std::snprintf(llc, sizeof(llc), "%.0f KB", p.llc_bytes / 1024.0);
    }
    if (p.msrp_usd >= 0) {
      std::snprintf(msrp, sizeof(msrp), "$%.0f", p.msrp_usd);
    } else {
      std::snprintf(msrp, sizeof(msrp), "-");
    }
    if (p.hourly_usd >= 0) {
      std::snprintf(hourly, sizeof(hourly), "$%.4g", p.hourly_usd);
    } else {
      std::snprintf(hourly, sizeof(hourly), "-");
    }
    if (p.tdp_watts >= 0) {
      std::snprintf(tdp, sizeof(tdp), "%.1f W", p.tdp_watts);
    } else {
      std::snprintf(tdp, sizeof(tdp), "-");
    }
    t.AddRow({p.category, p.name, p.cpu, freq, std::to_string(p.cores), llc,
              msrp, hourly, tdp});
  }
  t.Print(std::cout);
  return 0;
}
