// Validates the chaos-soak artifact written by bench_chaos --json: the CI
// gate that makes the fine-grained recovery guarantees executable. Checks
// that the sweep was big enough (seed floors per scale factor), that every
// scenario produced the bit-identical answer (zero checksum mismatches),
// that the sweep actually exercised the machinery it claims to cover
// (steals, checkpoints, recovered morsels, joins, and leaves all nonzero),
// and that fine-grained recovery strictly dominates whole-partition retry
// on the modeled latency tail (p95/p99/max over the paired scenarios).
// Exits nonzero with a message on the first violation.
#include <cstdio>
#include <string>

#include "artifact.h"
#include "common/cli.h"

namespace {

using wimpi::bench::RunArtifact;

bool Fail(const std::string& msg) {
  std::fprintf(stderr, "[chaos-check] FAIL: %s\n", msg.c_str());
  return false;
}

// Fetches series/metric or fails loudly; chaos artifacts must be complete.
bool Get(const RunArtifact& a, const std::string& series,
         const std::string& metric, double* out) {
  const auto s = a.rows.find(series);
  if (s == a.rows.end()) return Fail("missing series '" + series + "'");
  const auto m = s->second.find(metric);
  if (m == s->second.end()) {
    return Fail("series '" + series + "' misses metric '" + metric + "'");
  }
  *out = m->second;
  return true;
}

bool CheckSweep(const RunArtifact& a, const std::string& series,
                double min_seeds) {
  double v = 0;
  if (!Get(a, series, "seeds", &v)) return false;
  if (v < min_seeds) {
    return Fail(series + ": only " + std::to_string(static_cast<long>(v)) +
                " seeds (need >= " +
                std::to_string(static_cast<long>(min_seeds)) + ")");
  }
  const double seeds = v;
  if (!Get(a, series, "checksum_mismatches", &v)) return false;
  if (v != 0) {
    return Fail(series + ": " + std::to_string(static_cast<long>(v)) +
                " checksum mismatch(es) — answers are not bit-identical");
  }
  // The sweep must exercise every recovery mechanism, or the "200 green
  // seeds" claim is hollow: a regression that silently disables stealing
  // (or checkpointing, or membership changes) would still pass checksums.
  for (const char* counter : {"steals", "stolen_morsels", "checkpoints",
                              "recovered_morsels", "joins", "leaves"}) {
    if (!Get(a, series, counter, &v)) return false;
    if (v <= 0) {
      return Fail(series + ": counter '" + std::string(counter) +
                  "' is zero — the sweep never exercised it");
    }
  }
  std::fprintf(stderr, "[chaos-check] %s OK: %ld seeds, all mechanisms hit\n",
               series.c_str(), static_cast<long>(seeds));
  return true;
}

bool CheckDominance(const RunArtifact& a) {
  // The recovery series is the point of the whole subsystem: at the tail,
  // re-executing only unacknowledged morsels (plus stealing from
  // stragglers) must beat re-running whole partitions. Strict inequality
  // at p95 and above; the median may tie (mild faults recover cheaply
  // either way).
  for (const char* p : {"p95", "p99", "max"}) {
    double fine = 0, retry = 0;
    if (!Get(a, "recovery", std::string("fine_") + p + "_s", &fine) ||
        !Get(a, "recovery", std::string("retry_") + p + "_s", &retry)) {
      return false;
    }
    if (!(fine < retry)) {
      return Fail(std::string("recovery: fine_") + p + "_s (" +
                  std::to_string(fine) + ") does not beat retry_" + p +
                  "_s (" + std::to_string(retry) + ")");
    }
    std::fprintf(stderr, "[chaos-check] recovery %s: fine %.4fs < retry %.4fs\n",
                 p, fine, retry);
  }
  double fine = 0, retry = 0;
  if (!Get(a, "recovery", "fine_p50_s", &fine) ||
      !Get(a, "recovery", "retry_p50_s", &retry)) {
    return false;
  }
  if (fine > retry * 1.05) {
    return Fail("recovery: fine-grained median is more than 5% worse than "
                "retry (" + std::to_string(fine) + " vs " +
                std::to_string(retry) + ") — checkpoint overhead regressed");
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const wimpi::CommandLine cli(argc, argv);
  if (cli.positional().empty()) {
    std::fprintf(stderr,
                 "usage: wimpi_chaos_check <BENCH_chaos.json> "
                 "[--min-seeds N] [--min-sf10-seeds N]\n");
    return 2;
  }
  const double min_seeds = cli.GetDouble("min-seeds", 200);
  const double min_sf10 = cli.GetDouble("min-sf10-seeds", 16);

  RunArtifact a;
  std::string error;
  if (!wimpi::bench::ReadArtifact(cli.positional()[0], &a, &error)) {
    return Fail(error) ? 0 : 1;
  }
  if (!CheckSweep(a, "chaos", min_seeds)) return 1;
  if (!CheckSweep(a, "chaos_sf10", min_sf10)) return 1;
  if (!CheckDominance(a)) return 1;
  std::fprintf(stderr, "[chaos-check] OK\n");
  return 0;
}
