// Ablation A2: google-benchmark microbenchmarks of the engine's core
// operators on the host (real wall-clock performance, not modeled). These
// ground the abstract work-unit constants in counters.h.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "exec/aggregate.h"
#include "exec/expr.h"
#include "exec/filter.h"
#include "exec/join.h"
#include "exec/sort.h"
#include "storage/table.h"

namespace wimpi {
namespace {

storage::Table MakeTable(int64_t rows, uint64_t seed) {
  storage::Schema schema({{"k", storage::DataType::kInt64},
                          {"v", storage::DataType::kFloat64},
                          {"g", storage::DataType::kInt32}});
  storage::Table t("bench", schema);
  Rng rng(seed);
  for (int64_t i = 0; i < rows; ++i) {
    t.column(0).AppendInt64(rng.Uniform(0, rows));
    t.column(1).AppendFloat64(rng.NextDouble() * 100);
    t.column(2).AppendInt32(static_cast<int32_t>(rng.Uniform(0, 1023)));
  }
  t.FinishLoad();
  return t;
}

void BM_FilterF64(benchmark::State& state) {
  const storage::Table t = MakeTable(state.range(0), 1);
  for (auto _ : state) {
    const exec::SelVec sel = exec::Filter(
        exec::ColumnSource(t),
        {exec::Predicate::CmpF64("v", exec::CmpOp::kLt, 50.0)}, nullptr);
    benchmark::DoNotOptimize(sel.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FilterF64)->Arg(1 << 16)->Arg(1 << 20);

void BM_Gather(benchmark::State& state) {
  const storage::Table t = MakeTable(state.range(0), 2);
  const exec::SelVec sel = exec::Filter(
      exec::ColumnSource(t),
      {exec::Predicate::CmpF64("v", exec::CmpOp::kLt, 50.0)}, nullptr);
  for (auto _ : state) {
    auto col = exec::Gather(t.column("v"), sel, nullptr);
    benchmark::DoNotOptimize(col->size());
  }
  state.SetItemsProcessed(state.iterations() * sel.size());
}
BENCHMARK(BM_Gather)->Arg(1 << 16)->Arg(1 << 20);

void BM_HashJoin(benchmark::State& state) {
  const storage::Table build = MakeTable(state.range(0) / 4, 3);
  const storage::Table probe = MakeTable(state.range(0), 4);
  for (auto _ : state) {
    const exec::JoinResult jr =
        exec::HashJoin({&build.column("k")}, {&probe.column("k")},
                       exec::JoinKind::kInner, nullptr);
    benchmark::DoNotOptimize(jr.probe_idx.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashJoin)->Arg(1 << 16)->Arg(1 << 20);

void BM_HashAggregate(benchmark::State& state) {
  const storage::Table t = MakeTable(state.range(0), 5);
  for (auto _ : state) {
    exec::Relation agg = exec::HashAggregate(
        exec::ColumnSource(t), {"g"},
        {{exec::AggFn::kSum, "v", "s"}, {exec::AggFn::kCountStar, "", "c"}},
        nullptr);
    benchmark::DoNotOptimize(agg.num_rows());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashAggregate)->Arg(1 << 16)->Arg(1 << 20);

void BM_Sort(benchmark::State& state) {
  const storage::Table t = MakeTable(state.range(0), 6);
  for (auto _ : state) {
    const exec::SelVec perm =
        exec::SortPerm(exec::ColumnSource(t), {{"v", false}}, nullptr);
    benchmark::DoNotOptimize(perm.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sort)->Arg(1 << 16)->Arg(1 << 18);

void BM_TopN(benchmark::State& state) {
  const storage::Table t = MakeTable(state.range(0), 7);
  for (auto _ : state) {
    const exec::SelVec perm =
        exec::SortPerm(exec::ColumnSource(t), {{"v", false}}, nullptr, 100);
    benchmark::DoNotOptimize(perm.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TopN)->Arg(1 << 20);

}  // namespace
}  // namespace wimpi

BENCHMARK_MAIN();
