// Reproduces Table II (TPC-H SF 1 runtimes across all ten comparison
// points) and the left half of Figure 3 (per-query speedups relative to the
// Raspberry Pi 3B+). Queries execute for real at --physical-sf and the
// recorded work counters are projected to SF 1 through the hardware model.
#include <cstdio>
#include <iostream>

#include "analysis/metrics.h"
#include "bench_util.h"
#include "common/cli.h"
#include "common/table_printer.h"
#include "paper_data.h"

int main(int argc, char** argv) {
  using wimpi::TablePrinter;
  using namespace wimpi::bench;

  const wimpi::CommandLine cli(argc, argv);
  const double physical_sf = cli.GetDouble("physical-sf", 0.1);
  const double model_sf = 1.0;

  const wimpi::engine::Database db = LoadDb(physical_sf);
  const auto runs =
      CollectQueryStats(db, model_sf / physical_sf, AllQueryNumbers());
  const wimpi::hw::CostModel model;
  const auto runtimes = ModelRuntimes(runs, model);

  // --- Table II ---
  std::cout << "TABLE II: modeled runtimes (s) for SF 1\n";
  std::vector<std::string> header = {"Name"};
  for (int q = 1; q <= 22; ++q) header.push_back("Q" + std::to_string(q));
  TablePrinter t(header);
  for (const auto& p : wimpi::hw::AllProfiles()) {
    std::vector<std::string> row = {p.name};
    for (int q = 1; q <= 22; ++q) {
      row.push_back(TablePrinter::Fixed(runtimes.at(q).at(p.name), 3));
    }
    t.AddRow(std::move(row));
  }
  t.Print(std::cout);

  // --- Measured vs paper ---
  std::cout << "\nModel vs paper (Table II), runtime ratio model/paper:\n";
  TablePrinter cmp({"Name", "median ratio", "min", "max"});
  for (const auto& p : wimpi::hw::AllProfiles()) {
    const auto& paper = PaperTable2().at(p.name);
    std::vector<double> ratios;
    for (int q = 1; q <= 22; ++q) {
      ratios.push_back(runtimes.at(q).at(p.name) / paper[q - 1]);
    }
    auto mm = std::minmax_element(ratios.begin(), ratios.end());
    cmp.AddRow({p.name,
                TablePrinter::Fixed(wimpi::analysis::Median(ratios), 2),
                TablePrinter::Fixed(*mm.first, 2),
                TablePrinter::Fixed(*mm.second, 2)});
  }
  cmp.Print(std::cout);

  // --- Figure 3 (left): speedups over the Pi ---
  std::cout << "\nFIGURE 3 (left): speedup of each comparison point over the "
               "Pi 3B+ at SF 1\n";
  TablePrinter fig3({"Name", "median speedup", "min", "max",
                     "paper median"});
  for (const auto& p : wimpi::hw::AllProfiles()) {
    if (p.name == "pi3b+") continue;
    std::vector<double> speedups, paper_speedups;
    for (int q = 1; q <= 22; ++q) {
      speedups.push_back(runtimes.at(q).at("pi3b+") /
                         runtimes.at(q).at(p.name));
      paper_speedups.push_back(PaperTable2().at("pi3b+")[q - 1] /
                               PaperTable2().at(p.name)[q - 1]);
    }
    auto mm = std::minmax_element(speedups.begin(), speedups.end());
    fig3.AddRow({p.name,
                 TablePrinter::Multiplier(wimpi::analysis::Median(speedups)),
                 TablePrinter::Multiplier(*mm.first),
                 TablePrinter::Multiplier(*mm.second),
                 TablePrinter::Multiplier(
                     wimpi::analysis::Median(paper_speedups))});
  }
  fig3.Print(std::cout);
  std::cout << "Paper headline: the Pi is on average ~10x slower at SF 1; "
               "median relative performance 0.1-0.3x; worst on the "
               "memory-bound Q1.\n";

  // Per-query Pi relative performance (the paper's Q1-worst / Q11-best
  // observation).
  double worst = 1e9, best = 0;
  int worst_q = 0, best_q = 0;
  for (int q = 1; q <= 22; ++q) {
    const double rel =
        runtimes.at(q).at("op-e5") / runtimes.at(q).at("pi3b+");
    if (rel < worst) {
      worst = rel;
      worst_q = q;
    }
    if (rel > best) {
      best = rel;
      best_q = q;
    }
  }
  std::printf(
      "Pi relative to op-e5: best on Q%d (%.2fx), worst on Q%d (%.2fx); "
      "paper: best Q11/Q16-class queries, worst Q1.\n",
      best_q, best, worst_q, worst);

  // --- Machine-readable artifact (--json=path) ---
  const std::string json_path = cli.GetString("json", "");
  if (!json_path.empty()) {
    const wimpi::bench::RunArtifact artifact =
        RuntimesArtifact("table2_sf1", model_sf, runtimes, runs);
    if (!WriteArtifact(json_path, artifact)) return 1;
  }
  return 0;
}
