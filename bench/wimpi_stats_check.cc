// wimpi_stats_check: CI validator for the plan-quality artifact written by
// bench_stats_qerror --json. Two layers of checks:
//
//   1. Structural invariants that must hold for ANY valid run — the
//      cardinality series covers all 22 queries, every query estimated at
//      least one operator, Q-errors are >= 1 with geomean <= max, the
//      answer-mismatch count is zero, and every sketch NDV relative error
//      is under the --max-ndv-err bound (tentpole target: < 3% at the
//      default 2^14-register HLL; the default bound leaves headroom).
//   2. Optional regression gate: with --baseline, the artifact is compared
//      against the committed baseline via CompareArtifacts — the series
//      are fully deterministic, so the default tolerance applies.
//
//   ./bench/wimpi_stats_check artifact.json [--baseline BENCH_stats.json]
//       [--max-ndv-err 0.05] [--max-qerror 0] [--rel-tol 0.02]
//
// --max-qerror > 0 additionally caps every per-query qerror.max (off by
// default: absolute Q-error depends on query shape, the baseline gate is
// the primary drift detector).
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "artifact.h"
#include "common/cli.h"

namespace {

struct Checker {
  int failures = 0;

  void Fail(const std::string& msg) {
    std::fprintf(stderr, "FAIL: %s\n", msg.c_str());
    ++failures;
  }
  void Check(bool ok, const std::string& msg) {
    if (!ok) Fail(msg);
  }
};

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const wimpi::CommandLine cli(argc, argv);
  const std::string baseline_path = cli.GetString("baseline", "");
  const double max_ndv_err = cli.GetDouble("max-ndv-err", 0.05);
  const double max_qerror = cli.GetDouble("max-qerror", 0);
  const double rel_tol = cli.GetDouble("rel-tol", 0.02);

  const std::string artifact_path =
      cli.positional().empty() ? "" : cli.positional().front();
  if (artifact_path.empty()) {
    std::fprintf(stderr,
                 "usage: wimpi_stats_check <artifact.json> "
                 "[--baseline base.json] [--max-ndv-err 0.05] "
                 "[--max-qerror 0] [--rel-tol 0.02]\n");
    return 2;
  }

  wimpi::bench::RunArtifact artifact;
  std::string error;
  if (!wimpi::bench::ReadArtifact(artifact_path, &artifact, &error)) {
    std::fprintf(stderr, "FAIL: cannot read %s: %s\n", artifact_path.c_str(),
                 error.c_str());
    return 1;
  }

  Checker c;
  c.Check(artifact.bench == "stats_qerror",
          "artifact bench is '" + artifact.bench + "', want 'stats_qerror'");

  // ---- cardinality series ----
  const auto card_it = artifact.rows.find("cardinality");
  if (card_it == artifact.rows.end()) {
    c.Fail("artifact has no 'cardinality' series");
  } else {
    const auto& card = card_it->second;
    auto get = [&](const std::string& metric, double* out) {
      const auto it = card.find(metric);
      if (it == card.end()) return false;
      *out = it->second;
      return true;
    };
    double mismatches = -1;
    c.Check(get("answer_mismatches", &mismatches) && mismatches == 0,
            "cardinality.answer_mismatches must be present and 0 (got " +
                Num(mismatches) + ")");
    for (int q = 1; q <= 22; ++q) {
      const std::string p = "Q" + std::to_string(q);
      double maxq = 0, geo = 0, est = 0, rec = 0;
      if (!get(p + ".qerror.max", &maxq) || !get(p + ".qerror.geomean", &geo) ||
          !get(p + ".ops.estimated", &est) || !get(p + ".ops.recorded", &rec)) {
        c.Fail("cardinality series is missing metrics for " + p);
        continue;
      }
      c.Check(est >= 1, p + ": no operators were estimated");
      c.Check(rec >= est,
              p + ": recorded ops (" + Num(rec) + ") < estimated (" +
                  Num(est) + ")");
      c.Check(maxq >= 1 && std::isfinite(maxq),
              p + ": qerror.max " + Num(maxq) + " is not a finite value >= 1");
      c.Check(geo >= 1 && geo <= maxq + 1e-9,
              p + ": qerror.geomean " + Num(geo) +
                  " outside [1, max=" + Num(maxq) + "]");
      if (max_qerror > 0) {
        c.Check(maxq <= max_qerror, p + ": qerror.max " + Num(maxq) +
                                        " exceeds --max-qerror " +
                                        Num(max_qerror));
      }
    }
  }

  // ---- sketch series ----
  const auto sketch_it = artifact.rows.find("sketch");
  if (sketch_it == artifact.rows.end()) {
    c.Fail("artifact has no 'sketch' series");
  } else {
    int ndv_metrics = 0;
    for (const auto& [metric, value] : sketch_it->second) {
      if (metric.find("ndv_rel_err") != std::string::npos) {
        ++ndv_metrics;
        c.Check(value <= max_ndv_err,
                "sketch." + metric + " = " + Num(value) +
                    " exceeds --max-ndv-err " + Num(max_ndv_err));
      }
      if (metric.find("quantile_rank_err") != std::string::npos) {
        // One equi-depth bucket of 64 holds ~1.6% of the mass; allow a few
        // buckets of slack for sampled builds and duplicate-heavy columns.
        c.Check(value <= 0.08, "sketch." + metric + " = " + Num(value) +
                                   " exceeds rank-error bound 0.08");
      }
    }
    c.Check(ndv_metrics > 0, "sketch series has no ndv_rel_err metrics");
  }

  // ---- baseline regression gate ----
  if (!baseline_path.empty()) {
    wimpi::bench::RunArtifact base;
    if (!wimpi::bench::ReadArtifact(baseline_path, &base, &error)) {
      std::fprintf(stderr, "FAIL: cannot read baseline %s: %s\n",
                   baseline_path.c_str(), error.c_str());
      return 1;
    }
    wimpi::bench::CompareOptions copts;
    copts.rel_tol = rel_tol;
    const wimpi::bench::CompareResult cmp =
        wimpi::bench::CompareArtifacts(base, artifact, copts);
    std::printf("%s", cmp.Format().c_str());
    if (!cmp.ok) c.Fail("artifact regressed against " + baseline_path);
  }

  if (c.failures > 0) {
    std::fprintf(stderr, "wimpi_stats_check: %d check(s) failed\n",
                 c.failures);
    return 1;
  }
  std::printf("wimpi_stats_check: %s OK%s\n", artifact_path.c_str(),
              baseline_path.empty() ? "" : " (baseline gate passed)");
  return 0;
}
