// Reproduces Figure 5: runtimes normalized by CPU MSRP (On-Premises
// servers only, since cloud SKUs have no public MSRP). Values above 1.0
// mean the Pi configuration wins.
#include <cstdio>
#include <iostream>

#include "analysis/metrics.h"
#include "bench_util.h"
#include "cluster/wimpi_cluster.h"
#include "common/cli.h"
#include "common/table_printer.h"
#include "paper_data.h"

int main(int argc, char** argv) {
  using wimpi::TablePrinter;
  using namespace wimpi::analysis;
  using namespace wimpi::bench;

  const wimpi::CommandLine cli(argc, argv);
  const double physical_sf = cli.GetDouble("physical-sf", 0.1);

  const wimpi::engine::Database db = LoadDb(physical_sf);
  const wimpi::hw::CostModel model;
  const auto onprem = wimpi::hw::OnPremProfiles();

  // --- SF 1: single Pi vs each on-prem server, all 22 queries ---
  const auto sf1_stats =
      CollectQueryStats(db, 1.0 / physical_sf, AllQueryNumbers());
  const auto sf1 = ModelRuntimes(sf1_stats, model);

  std::cout << "FIGURE 5 (left): MSRP-normalized improvement at SF 1 "
               "(single Pi 3B+; >1 means the Pi wins)\n";
  TablePrinter left({"Query", "vs op-e5", "vs op-gold"});
  std::map<std::string, std::vector<double>> improvements;
  for (int q = 1; q <= 22; ++q) {
    std::vector<std::string> row = {"Q" + std::to_string(q)};
    for (const auto* p : onprem) {
      const double imp =
          Improvement(sf1.at(q).at(p->name), ServerMsrp(*p),
                      sf1.at(q).at("pi3b+"), PiClusterMsrp(1));
      improvements[p->name].push_back(imp);
      row.push_back(TablePrinter::Multiplier(imp));
    }
    left.AddRow(std::move(row));
  }
  left.Print(std::cout);
  for (const auto* p : onprem) {
    auto& v = improvements[p->name];
    auto mm = std::minmax_element(v.begin(), v.end());
    std::printf("  vs %-8s median %5.1fx, range %.1f-%.1fx", p->name.c_str(),
                Median(v), *mm.first, *mm.second);
    std::printf("   (paper: op-e5 7-41x median 22x; op-gold 6-64x median "
                "29x)\n");
  }

  // --- SF 10: WIMPI cluster sizes vs on-prem ---
  const auto& queries = PaperSf10Queries();
  const auto sf10_stats = CollectQueryStats(db, 10.0 / physical_sf, queries);
  const auto sf10 = ModelRuntimes(sf10_stats, model);

  std::cout << "\nFIGURE 5 (right): MSRP-normalized improvement at SF 10 "
               "(WIMPI vs op-e5)\n";
  std::vector<std::string> header = {"Nodes"};
  for (const int q : queries) header.push_back("Q" + std::to_string(q));
  TablePrinter right(header);
  for (const int nodes : PaperClusterSizes()) {
    wimpi::cluster::ClusterOptions opts;
    opts.num_nodes = nodes;
    opts.sf_scale = 10.0 / physical_sf;
    const wimpi::cluster::WimpiCluster wimpi(db, opts);
    std::vector<std::string> row = {std::to_string(nodes)};
    for (const int q : queries) {
      const double pi_time = wimpi.Run(q, model).value().total_seconds;
      const auto* e5 = onprem[0];
      row.push_back(TablePrinter::Multiplier(
          Improvement(sf10.at(q).at(e5->name), ServerMsrp(*e5), pi_time,
                      PiClusterMsrp(nodes))));
    }
    right.AddRow(std::move(row));
  }
  right.Print(std::cout);
  std::cout << "Paper shapes: Q1/Q3/Q4/Q5 below break-even at 4-8 nodes, "
               "then jump to 2-8x; Q6/Q14/Q19 degrade as nodes are added; "
               "Q13 never breaks even (single node does all the work).\n";
  return 0;
}
