// Reproduces Figure 7: runtimes normalized by TDP-estimated energy
// (On-Premises servers only, per the paper). CPU-only TDP for the servers,
// whole-board 5.1 W per node for the Pi -- the paper's pessimistic choice.
#include <cstdio>
#include <iostream>

#include "analysis/metrics.h"
#include "bench_util.h"
#include "cluster/wimpi_cluster.h"
#include "common/cli.h"
#include "common/table_printer.h"
#include "paper_data.h"

int main(int argc, char** argv) {
  using wimpi::TablePrinter;
  using namespace wimpi::analysis;
  using namespace wimpi::bench;

  const wimpi::CommandLine cli(argc, argv);
  const double physical_sf = cli.GetDouble("physical-sf", 0.1);

  const wimpi::engine::Database db = LoadDb(physical_sf);
  const wimpi::hw::CostModel model;
  const auto onprem = wimpi::hw::OnPremProfiles();

  // --- SF 1 ---
  const auto sf1_stats =
      CollectQueryStats(db, 1.0 / physical_sf, AllQueryNumbers());
  const auto sf1 = ModelRuntimes(sf1_stats, model);

  std::cout << "FIGURE 7 (left): energy-normalized improvement at SF 1 "
               "(single Pi; energy = runtime x TDP)\n";
  TablePrinter left({"Query", "vs op-e5", "vs op-gold"});
  std::vector<double> all_imps;
  for (int q = 1; q <= 22; ++q) {
    std::vector<std::string> row = {"Q" + std::to_string(q)};
    for (const auto* p : onprem) {
      const double pi_s = sf1.at(q).at("pi3b+");
      const double imp = ServerEnergyJoules(*p, sf1.at(q).at(p->name)) /
                         PiClusterEnergyJoules(1, pi_s);
      all_imps.push_back(imp);
      row.push_back(TablePrinter::Multiplier(imp));
    }
    left.AddRow(std::move(row));
  }
  left.Print(std::cout);
  {
    auto mm = std::minmax_element(all_imps.begin(), all_imps.end());
    std::printf("  SF 1 energy improvement: median %.1fx, range %.1f-%.1fx "
                "(paper: 2-22x, median ~10x)\n",
                Median(all_imps), *mm.first, *mm.second);
  }

  // The paper's counterintuitive finding: the Pi's *worst* energy ratio is
  // on memory-bound Q1, its best on selective Q6.
  auto energy_ratio = [&](int q) {
    return ServerEnergyJoules(*onprem[0], sf1.at(q).at("op-e5")) /
           PiClusterEnergyJoules(1, sf1.at(q).at("pi3b+"));
  };
  std::printf("  Q1 (memory-bound) %.1fx vs Q6 (selective) %.1fx -- paper: "
              "scans are the Pi's *worst* case for energy, contradicting "
              "prior work.\n",
              energy_ratio(1), energy_ratio(6));

  // --- SF 10 ---
  const auto& queries = PaperSf10Queries();
  const auto sf10_stats = CollectQueryStats(db, 10.0 / physical_sf, queries);
  const auto sf10 = ModelRuntimes(sf10_stats, model);

  std::cout << "\nFIGURE 7 (right): energy-normalized improvement at SF 10 "
               "(WIMPI vs op-e5/op-gold)\n";
  std::vector<std::string> header = {"Nodes"};
  for (const int q : queries) header.push_back("Q" + std::to_string(q));
  TablePrinter right(header);
  for (const int nodes : PaperClusterSizes()) {
    wimpi::cluster::ClusterOptions opts;
    opts.num_nodes = nodes;
    opts.sf_scale = 10.0 / physical_sf;
    const wimpi::cluster::WimpiCluster wimpi(db, opts);
    std::vector<std::string> row = {std::to_string(nodes)};
    for (const int q : queries) {
      const double pi_s = wimpi.Run(q, model).value().total_seconds;
      const double imp =
          ServerEnergyJoules(*onprem[0], sf10.at(q).at("op-e5")) /
          PiClusterEnergyJoules(nodes, pi_s);
      row.push_back(TablePrinter::Multiplier(imp));
    }
    right.AddRow(std::move(row));
  }
  right.Print(std::cout);
  std::cout << "Paper shapes: better energy on six of eight queries, max "
               "improvements 5-6x; Q13 always loses.\n";
  return 0;
}
