#ifndef WIMPI_BENCH_PAPER_DATA_H_
#define WIMPI_BENCH_PAPER_DATA_H_

// Reference numbers transcribed from the paper ("The Case for In-Memory
// OLAP on 'Wimpy' Nodes", ICDE 2021) so that every benchmark binary can
// print measured-vs-paper comparisons. Two cells are missing in the
// published tables (marked with best-effort interpolations below).

#include <map>
#include <string>
#include <vector>

namespace wimpi::bench {

// Table II: TPC-H SF 1 runtimes in seconds, [profile][query 1..22].
inline const std::map<std::string, std::vector<double>>& PaperTable2() {
  static const auto& t = *new std::map<std::string, std::vector<double>>{
      {"op-e5",
       {0.161, 0.008, 0.080, 0.061, 0.082, 0.028, 0.052, 0.116, 0.116, 0.062,
        0.017, 0.036, 0.196, 0.019, 0.034, 0.156, 0.101, 0.130, 0.027, 0.045,
        0.155, 0.112}},
      {"op-gold",
       {0.056, 0.008, 0.046, 0.025, 0.041, 0.012, 0.024, 0.069, 0.055, 0.031,
        0.011, 0.020, 0.121, 0.011, 0.015, 0.084, 0.051, 0.063, 0.020, 0.022,
        0.199, 0.063}},
      {"c4.8xlarge",
       {0.054, 0.008, 0.021, 0.016, 0.020, 0.006, 0.022, 0.037, 0.033, 0.017,
        0.006, 0.011, 0.097, 0.006, 0.011, 0.045, 0.022, 0.050, 0.018, 0.016,
        0.068, 0.038}},
      {"m4.10xlarge",
       {0.056, 0.007, 0.021, 0.017, 0.021, 0.007, 0.021, 0.041, 0.034, 0.019,
        0.006, 0.013, 0.111, 0.007, 0.012, 0.048, 0.022, 0.057, 0.021, 0.018,
        0.087, 0.044}},
      {"m4.16xlarge",  // Q11 cell missing in the published table: 0.006 est.
       {0.043, 0.007, 0.023, 0.015, 0.021, 0.006, 0.023, 0.043, 0.032, 0.022,
        0.006, 0.014, 0.116, 0.009, 0.012, 0.045, 0.016, 0.059, 0.029, 0.020,
        0.237, 0.043}},
      {"z1d.metal",
       {0.073, 0.012, 0.079, 0.052, 0.057, 0.027, 0.035, 0.096, 0.083, 0.054,
        0.024, 0.032, 0.196, 0.018, 0.031, 0.167, 0.089, 0.084, 0.037, 0.047,
        0.169, 0.094}},
      {"m5.metal",
       {0.034, 0.010, 0.033, 0.023, 0.026, 0.008, 0.025, 0.053, 0.043, 0.031,
        0.010, 0.018, 0.135, 0.011, 0.017, 0.074, 0.027, 0.064, 0.031, 0.024,
        0.248, 0.064}},
      {"a1.metal",
       {0.270, 0.009, 0.062, 0.064, 0.087, 0.025, 0.071, 0.126, 0.123, 0.053,
        0.018, 0.046, 0.330, 0.015, 0.026, 0.190, 0.077, 0.135, 0.024, 0.032,
        0.085, 0.143}},
      {"c6g.metal",
       {0.049, 0.005, 0.045, 0.026, 0.047, 0.011, 0.038, 0.079, 0.057, 0.052,
        0.011, 0.032, 0.204, 0.020, 0.018, 0.117, 0.040, 0.083, 0.017, 0.022,
        0.620, 0.081}},
      {"pi3b+",
       {1.772, 0.044, 0.227, 0.222, 0.283, 0.099, 0.486, 0.244, 0.684, 0.221,
        0.034, 0.154, 1.771, 0.076, 0.093, 0.302, 0.220, 0.394, 0.140, 0.141,
        0.603, 0.269}},
  };
  return t;
}

// Table III: TPC-H SF 10 runtimes in seconds, [row][query in
// {1,3,4,5,6,13,14,19}]. WIMPI rows are "wimpi-N" for N nodes.
inline const std::map<std::string, std::vector<double>>& PaperTable3() {
  static const auto& t = *new std::map<std::string, std::vector<double>>{
      {"op-e5", {1.474, 0.603, 0.465, 0.542, 0.191, 2.405, 0.153, 0.131}},
      {"op-gold", {0.482, 0.341, 0.212, 0.278, 0.086, 1.817, 0.055, 0.072}},
      {"c4.8xlarge",
       {0.554, 0.183, 0.144, 0.161, 0.054, 1.897, 0.047, 0.063}},
      {"m4.10xlarge",
       {0.566, 0.201, 0.154, 0.167, 0.054, 1.963, 0.045, 0.063}},
      // Q4 cell missing in the published table: 0.150 est.
      {"m4.16xlarge",
       {0.388, 0.203, 0.150, 0.140, 0.041, 1.644, 0.051, 0.065}},
      {"z1d.metal", {0.600, 0.364, 0.225, 0.300, 0.105, 1.787, 0.082, 0.092}},
      {"m5.metal", {0.306, 0.189, 0.117, 0.135, 0.038, 1.351, 0.047, 0.065}},
      {"a1.metal", {2.972, 0.692, 0.620, 0.925, 0.219, 6.651, 0.132, 0.173}},
      {"c6g.metal", {0.452, 0.372, 0.258, 0.290, 0.078, 3.505, 0.059, 0.077}},
      {"wimpi-4",
       {57.814, 53.424, 9.492, 47.147, 0.303, 103.604, 0.280, 0.624}},
      {"wimpi-8",
       {2.319, 5.920, 0.928, 12.165, 0.238, 103.604, 0.167, 0.423}},
      {"wimpi-12",
       {1.561, 0.813, 0.636, 1.999, 0.134, 103.604, 0.108, 0.351}},
      {"wimpi-16",
       {1.242, 0.761, 0.506, 1.730, 0.138, 103.604, 0.103, 0.325}},
      {"wimpi-20",
       {0.705, 0.562, 0.348, 1.143, 0.094, 103.604, 0.085, 0.270}},
      {"wimpi-24",
       {0.678, 0.538, 0.342, 0.868, 0.108, 103.604, 0.104, 0.220}},
  };
  return t;
}

// The SF 10 query subset, in Table III column order.
inline const std::vector<int>& PaperSf10Queries() {
  static const auto& q = *new std::vector<int>{1, 3, 4, 5, 6, 13, 14, 19};
  return q;
}

// WIMPI cluster sizes evaluated in the paper.
inline const std::vector<int>& PaperClusterSizes() {
  static const auto& n = *new std::vector<int>{4, 8, 12, 16, 20, 24};
  return n;
}

}  // namespace wimpi::bench

#endif  // WIMPI_BENCH_PAPER_DATA_H_
