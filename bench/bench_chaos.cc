// Chaos soak for fine-grained recovery (DESIGN.md §14): sweeps hundreds of
// seed-derived fault x steal x resize scenarios against the simulated WIMPI
// cluster and enforces the contract the recovery design is built on — the
// answer relation is bit-identical to the clean run under EVERY schedule,
// because faults, steals, checkpoints, and membership changes only move
// modeled morsel ranges between node clocks, never the real execution.
//
// Each seed derives one scenario: the query rotates through the SF-10
// subset, FaultPlan::Generate picks the misbehaving nodes, even seeds add a
// ResizePlan (join/leave mid-run), and every seventh seed disables stealing
// so the checkpoint-only path stays covered. Fault-only seeds additionally
// run the same plan under whole-partition retry, producing the paired
// modeled-latency distributions behind the "recovery" artifact series: the
// fine-grained tail must dominate retry-only (gated by wimpi_chaos_check,
// value drift gated by wimpi_bench_compare against the committed baseline).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cluster/wimpi_cluster.h"
#include "common/cli.h"
#include "common/file_util.h"
#include "common/table_printer.h"
#include "obs/trace.h"
#include "tpch/queries.h"

namespace {

using namespace wimpi;
using namespace wimpi::bench;

// Accumulated evidence of one sweep (one model scale factor).
struct SweepStats {
  int seeds = 0;
  int mismatches = 0;        // checksum differences vs the clean run
  int pairs = 0;             // seeds that also ran under retry-only
  long steals = 0;
  long stolen_morsels = 0;
  long checkpoints = 0;
  long recovered_morsels = 0;
  long joins = 0;
  long leaves = 0;
  double checkpoint_bytes = 0;
  std::vector<double> fine_s;   // paired modeled totals, fine-grained
  std::vector<double> retry_s;  // paired modeled totals, retry-only
};

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const double idx = p * static_cast<double>(v.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0;
  double s = 0;
  for (const double x : v) s += x;
  return s / static_cast<double>(v.size());
}

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const double physical_sf = cli.GetDouble("physical-sf", 0.02);
  const int nodes = cli.GetInt("nodes", 8);
  const int sf1_seeds = cli.GetInt("seeds", 200);
  const int sf10_seeds = cli.GetInt("sf10-seeds", 16);
  const std::string json_path = cli.GetString("json", "");
  const std::string trace_path = cli.GetString("trace", "");
  const uint64_t trace_seed =
      static_cast<uint64_t>(cli.GetInt("trace-seed", 6));
  for (const std::string& path : {json_path, trace_path}) {
    std::string path_error;
    if (!path.empty() && !ValidateWritablePath(path, &path_error)) {
      std::fprintf(stderr, "[bench] %s\n", path_error.c_str());
      return 1;
    }
  }

  const engine::Database db = LoadDb(physical_sf);
  const hw::CostModel model;
  const std::vector<int> queries(std::begin(tpch::kSf10Queries),
                                 std::end(tpch::kSf10Queries));

  // One scenario run. Constructing the cluster per seed is cheap relative
  // to the partial executions inside Run(), and keeps every scenario fully
  // described by its options (the determinism story of the whole repo).
  auto run_once = [&](int q, double model_sf, cluster::RecoveryMode mode,
                      bool steal, const cluster::FaultPlan& faults,
                      const cluster::ResizePlan& resize)
      -> Result<cluster::DistributedRun> {
    cluster::ClusterOptions opts;
    opts.num_nodes = nodes;
    opts.sf_scale = model_sf / physical_sf;
    opts.faults = faults;
    opts.resize = resize;
    opts.recovery.mode = mode;
    opts.recovery.steal = steal;
    const cluster::WimpiCluster wimpi(db, opts);
    return wimpi.Run(q, model);
  };

  // Sweep one model scale factor: per-query clean references first (ground
  // truth checksums + clean modeled totals), then the seeded scenarios.
  auto sweep = [&](double model_sf, int n_seeds, uint64_t seed_base,
                   SweepStats* out) -> bool {
    std::map<int, uint64_t> clean_sum;
    for (const int q : queries) {
      const auto retry_clean = run_once(q, model_sf, cluster::RecoveryMode::kRetry,
                                        true, {}, {});
      const auto fine_clean = run_once(
          q, model_sf, cluster::RecoveryMode::kFineGrained, true, {}, {});
      if (!retry_clean.ok() || !fine_clean.ok()) {
        std::fprintf(stderr, "[bench] clean Q%d failed\n", q);
        return false;
      }
      clean_sum[q] = RelationChecksum(retry_clean->result);
      if (RelationChecksum(fine_clean->result) != clean_sum[q]) {
        std::fprintf(stderr,
                     "[bench] Q%d: clean fine-grained answer differs from "
                     "retry answer\n",
                     q);
        return false;
      }
    }
    for (int i = 0; i < n_seeds; ++i) {
      const uint64_t seed = seed_base + static_cast<uint64_t>(i) + 1;
      const int q = queries[i % queries.size()];
      const auto faults =
          cluster::FaultPlan::Generate(seed, nodes);
      const cluster::ResizePlan resize =
          (seed % 2 == 0) ? cluster::ResizePlan::Generate(seed, nodes)
                          : cluster::ResizePlan{};
      const bool steal = seed % 7 != 0;
      const auto fine = run_once(q, model_sf,
                                 cluster::RecoveryMode::kFineGrained, steal,
                                 faults, resize);
      if (!fine.ok()) {
        std::fprintf(stderr, "[bench] seed %llu Q%d failed: %s\n",
                     static_cast<unsigned long long>(seed), q,
                     fine.status().ToString().c_str());
        return false;
      }
      ++out->seeds;
      if (RelationChecksum(fine->result) != clean_sum.at(q)) {
        ++out->mismatches;
        std::fprintf(stderr,
                     "[bench] seed %llu Q%d: checksum mismatch vs clean "
                     "(faults: %s)\n",
                     static_cast<unsigned long long>(seed), q,
                     faults.ToString().c_str());
      }
      out->steals += fine->steals;
      out->stolen_morsels += fine->stolen_morsels;
      out->checkpoints += fine->checkpoints;
      out->recovered_morsels += fine->recovered_morsels;
      out->joins += fine->joins;
      out->leaves += fine->leaves;
      out->checkpoint_bytes += fine->checkpoint_bytes;
      // Fault-only, steal-on seeds also run under retry-only: the paired
      // modeled totals are the tail-latency comparison (resize has no
      // retry-mode equivalent, so those seeds cannot pair fairly).
      if (resize.empty() && steal) {
        const auto retry = run_once(q, model_sf,
                                    cluster::RecoveryMode::kRetry, true,
                                    faults, {});
        if (!retry.ok()) {
          std::fprintf(stderr, "[bench] seed %llu Q%d retry failed: %s\n",
                       static_cast<unsigned long long>(seed), q,
                       retry.status().ToString().c_str());
          return false;
        }
        ++out->pairs;
        out->fine_s.push_back(fine->total_seconds);
        out->retry_s.push_back(retry->total_seconds);
        if (cli.GetInt("dump-pairs", 0) != 0 &&
            fine->total_seconds > retry->total_seconds) {
          std::fprintf(stderr,
                       "[pair] seed %llu Q%d fine %.3f retry %.3f "
                       "(steals %d recov %d failed %d | retry retries %d) "
                       "faults: %s\n",
                       static_cast<unsigned long long>(seed), q,
                       fine->total_seconds, retry->total_seconds,
                       fine->steals, fine->recovered_morsels,
                       fine->nodes_failed, retry->retries,
                       faults.ToString().c_str());
        }
      }
      if ((i + 1) % 50 == 0) {
        std::fprintf(stderr, "[bench] SF %.0f: %d/%d seeds\n", model_sf,
                     i + 1, n_seeds);
      }
    }
    return true;
  };

  SweepStats sf1, sf10;
  if (!sweep(1.0, sf1_seeds, 0, &sf1)) return 1;
  if (!sweep(10.0, sf10_seeds, 1000000, &sf10)) return 1;

  // --- Console report ---
  auto report = [&](const char* name, const SweepStats& s) {
    std::cout << "CHAOS SOAK (" << name << "): " << s.seeds << " seeds, "
              << s.mismatches << " checksum mismatches\n";
    TablePrinter t({"counter", "value"});
    t.AddRow({"steals", std::to_string(s.steals)});
    t.AddRow({"stolen morsels", std::to_string(s.stolen_morsels)});
    t.AddRow({"checkpoints", std::to_string(s.checkpoints)});
    t.AddRow({"recovered morsels", std::to_string(s.recovered_morsels)});
    t.AddRow({"joins", std::to_string(s.joins)});
    t.AddRow({"leaves", std::to_string(s.leaves)});
    t.Print(std::cout);
  };
  report("SF 1", sf1);
  report("SF 10 subset", sf10);

  std::cout << "\nRECOVERY TAIL (modeled totals over " << sf1.pairs
            << " paired SF-1 scenarios)\n";
  TablePrinter tail({"mode", "mean", "p50", "p90", "p95", "p99", "max"});
  auto tail_row = [&](const char* name, const std::vector<double>& v) {
    tail.AddRow({name, TablePrinter::Fixed(Mean(v), 4),
                 TablePrinter::Fixed(Percentile(v, 0.50), 4),
                 TablePrinter::Fixed(Percentile(v, 0.90), 4),
                 TablePrinter::Fixed(Percentile(v, 0.95), 4),
                 TablePrinter::Fixed(Percentile(v, 0.99), 4),
                 TablePrinter::Fixed(Percentile(v, 1.0), 4)});
  };
  tail_row("fine-grained", sf1.fine_s);
  tail_row("retry-only", sf1.retry_s);
  tail.Print(std::cout);

  if (sf1.mismatches + sf10.mismatches > 0) {
    std::fprintf(stderr, "[bench] FAIL: checksum mismatches under chaos\n");
    return 1;
  }

  // --- Trace export (--trace): one representative fine-grained scenario,
  // for wimpi_trace_check (steal/ckpt span causality). ---
  if (!trace_path.empty()) {
    obs::TraceSink::Global().Clear();
    obs::TraceSink::Global().set_enabled(true);
    const auto traced = run_once(
        queries[trace_seed % queries.size()], 1.0,
        cluster::RecoveryMode::kFineGrained, true,
        cluster::FaultPlan::Generate(trace_seed, nodes),
        cluster::ResizePlan::Generate(trace_seed, nodes));
    obs::TraceSink::Global().set_enabled(false);
    if (!traced.ok()) {
      std::fprintf(stderr, "[bench] trace scenario failed: %s\n",
                   traced.status().ToString().c_str());
      return 1;
    }
    if (!obs::TraceSink::Global().WriteFile(trace_path)) return 1;
    std::fprintf(stderr, "[bench] wrote trace %s (seed %llu, steals %d)\n",
                 trace_path.c_str(),
                 static_cast<unsigned long long>(trace_seed),
                 traced->steals);
  }

  // --- Machine-readable artifact (--json=path) ---
  if (!json_path.empty()) {
    RunArtifact artifact = MakeArtifact("chaos", 1.0);
    auto fill = [&](const std::string& series, const SweepStats& s) {
      auto& row = artifact.rows[series];
      row["seeds"] = s.seeds;
      row["pairs"] = s.pairs;
      row["checksum_mismatches"] = s.mismatches;
      row["steals"] = static_cast<double>(s.steals);
      row["stolen_morsels"] = static_cast<double>(s.stolen_morsels);
      row["checkpoints"] = static_cast<double>(s.checkpoints);
      row["recovered_morsels"] = static_cast<double>(s.recovered_morsels);
      row["joins"] = static_cast<double>(s.joins);
      row["leaves"] = static_cast<double>(s.leaves);
      row["checkpoint_bytes"] = s.checkpoint_bytes;
    };
    fill("chaos", sf1);
    fill("chaos_sf10", sf10);
    // Modeled (deterministic) tail latencies; names avoid the noisy
    // "seconds"/"wall" patterns so wimpi_bench_compare gates them.
    auto& rec = artifact.rows["recovery"];
    for (const auto& [prefix, v] :
         {std::pair<const char*, const std::vector<double>*>{"fine",
                                                             &sf1.fine_s},
          {"retry", &sf1.retry_s}}) {
      const std::string p(prefix);
      rec[p + "_mean_s"] = Mean(*v);
      rec[p + "_p50_s"] = Percentile(*v, 0.50);
      rec[p + "_p90_s"] = Percentile(*v, 0.90);
      rec[p + "_p95_s"] = Percentile(*v, 0.95);
      rec[p + "_p99_s"] = Percentile(*v, 0.99);
      rec[p + "_max_s"] = Percentile(*v, 1.0);
    }
    if (!WriteArtifact(json_path, artifact)) return 1;
  }
  return 0;
}
