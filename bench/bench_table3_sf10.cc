// Reproduces Table III (TPC-H SF 10: servers vs the WIMPI cluster at
// 4-24 nodes) and the right half of Figure 3. Server rows are modeled
// single-node runs projected to SF 10; WIMPI rows are simulated distributed
// executions (real partial plans per node + network/merge/memory-pressure
// model).
#include <cstdint>
#include <cstdio>
#include <iostream>

#include "analysis/metrics.h"
#include "bench_util.h"
#include "cluster/wimpi_cluster.h"
#include "common/cli.h"
#include "common/file_util.h"
#include "common/table_printer.h"
#include "obs/export/event_log.h"
#include "obs/trace.h"
#include "paper_data.h"

int main(int argc, char** argv) {
  using wimpi::TablePrinter;
  using namespace wimpi::bench;

  const wimpi::CommandLine cli(argc, argv);
  const double physical_sf = cli.GetDouble("physical-sf", 0.1);
  const double model_sf = cli.GetDouble("model-sf", 10.0);

  // Output paths are validated before any work happens: a typo'd directory
  // should fail in milliseconds, not after the whole benchmark.
  const std::string trace_path = cli.GetString("trace", "");
  const std::string events_path = cli.GetString("events", "");
  for (const std::string& path : {trace_path, events_path}) {
    std::string path_error;
    if (!path.empty() && !wimpi::ValidateWritablePath(path, &path_error)) {
      std::fprintf(stderr, "[bench] %s\n", path_error.c_str());
      return 1;
    }
  }

  const wimpi::engine::Database db = LoadDb(physical_sf);
  const wimpi::hw::CostModel model;
  const auto& queries = PaperSf10Queries();

  // --- Server rows ---
  const auto runs = CollectQueryStats(db, model_sf / physical_sf, queries);
  const auto runtimes = ModelRuntimes(runs, model);

  std::map<std::string, std::map<int, double>> rows;  // row name -> q -> s
  for (const auto& p : wimpi::hw::AllProfiles()) {
    if (p.name == "pi3b+") continue;  // a single Pi cannot hold SF 10
    for (const int q : queries) rows[p.name][q] = runtimes.at(q).at(p.name);
  }

  // --- WIMPI rows ---
  for (const int nodes : PaperClusterSizes()) {
    wimpi::cluster::ClusterOptions opts;
    opts.num_nodes = nodes;
    opts.sf_scale = model_sf / physical_sf;
    const wimpi::cluster::WimpiCluster wimpi(db, opts);
    const std::string name = "wimpi-" + std::to_string(nodes);
    for (const int q : queries) {
      rows[name][q] = wimpi.Run(q, model).value().total_seconds;
    }
    std::fprintf(stderr, "[bench] simulated %d-node cluster\n", nodes);
  }

  auto print_rows = [&](const std::vector<std::string>& names) {
    std::vector<std::string> header = {"Name"};
    for (const int q : queries) header.push_back("Q" + std::to_string(q));
    header.push_back("paper Q1");
    TablePrinter t(header);
    for (const auto& name : names) {
      std::vector<std::string> row = {name};
      for (const int q : queries) {
        row.push_back(TablePrinter::Fixed(rows.at(name).at(q), 3));
      }
      row.push_back(PaperTable3().count(name)
                        ? TablePrinter::Fixed(PaperTable3().at(name)[0], 3)
                        : "-");
      t.AddRow(std::move(row));
    }
    t.Print(std::cout);
  };

  std::cout << "TABLE III: modeled runtimes (s) for SF " << model_sf << "\n";
  std::vector<std::string> server_names;
  for (const auto& p : wimpi::hw::AllProfiles()) {
    if (p.name != "pi3b+") server_names.push_back(p.name);
  }
  print_rows(server_names);
  std::vector<std::string> wimpi_names;
  for (const int nodes : PaperClusterSizes()) {
    wimpi_names.push_back("wimpi-" + std::to_string(nodes));
  }
  print_rows(wimpi_names);

  // --- Shape checks the paper emphasizes ---
  std::cout << "\nShape checks vs the paper:\n";
  const double q1_4 = rows.at("wimpi-4").at(1);
  const double q1_24 = rows.at("wimpi-24").at(1);
  std::printf(
      "  Q1 cliff: 4 nodes %.1fs -> 24 nodes %.3fs (%.0fx jump; paper "
      "57.8s -> 0.678s, 85x)\n",
      q1_4, q1_24, q1_4 / q1_24);
  std::printf("  Q13 flat: 4 nodes %.1fs vs 24 nodes %.1fs (paper: 103.6s at "
              "every size)\n",
              rows.at("wimpi-4").at(13), rows.at("wimpi-24").at(13));
  int beats = 0;
  for (const int q : queries) {
    if (rows.at("wimpi-24").at(q) < rows.at("op-e5").at(q)) ++beats;
  }
  std::printf(
      "  wimpi-24 beats op-e5 on %d of 8 queries (paper: WIMPI outperforms "
      "at least one comparison point on 5 of 8)\n",
      beats);

  // --- Figure 3 (right): speedups over wimpi-24 ---
  std::cout << "\nFIGURE 3 (right): speedup over the 24-node WIMPI cluster\n";
  TablePrinter fig3({"Name", "median speedup", "min", "max", "paper median"});
  for (const auto& name : server_names) {
    std::vector<double> speedups, paper_speedups;
    for (size_t i = 0; i < queries.size(); ++i) {
      const int q = queries[i];
      speedups.push_back(rows.at("wimpi-24").at(q) / rows.at(name).at(q));
      paper_speedups.push_back(PaperTable3().at("wimpi-24")[i] /
                               PaperTable3().at(name)[i]);
    }
    auto mm = std::minmax_element(speedups.begin(), speedups.end());
    fig3.AddRow({name,
                 TablePrinter::Multiplier(wimpi::analysis::Median(speedups)),
                 TablePrinter::Multiplier(*mm.first),
                 TablePrinter::Multiplier(*mm.second),
                 TablePrinter::Multiplier(
                     wimpi::analysis::Median(paper_speedups))});
  }
  fig3.Print(std::cout);

  // --- Degraded mode (--faults <seed>): rerun the 24-node cluster under a
  // seed-derived fault plan. Answers stay bit-identical to the clean run;
  // only modeled time and the recovery counters change. ---
  const uint64_t fault_seed = static_cast<uint64_t>(cli.GetInt("faults", 0));
  if ((!trace_path.empty() || !events_path.empty()) && fault_seed == 0) {
    std::fprintf(stderr,
                 "[bench] --trace/--events export the degraded-mode "
                 "timeline; pass --faults <seed> as well\n");
    return 1;
  }
  std::map<int, wimpi::cluster::DistributedRun> fault_runs;
  if (fault_seed != 0) {
    // Telemetry export (--trace/--events): the degraded-mode runs record
    // span trees and structured events; results and modeled times are
    // bit-identical either way.
    if (!trace_path.empty()) {
      wimpi::obs::TraceSink::Global().Clear();
      wimpi::obs::TraceSink::Global().set_enabled(true);
    }
    if (!events_path.empty()) {
      wimpi::obs::EventLog::Global().Clear();
      wimpi::obs::EventLog::Global().set_enabled(true);
    }
    wimpi::cluster::ClusterOptions fopts;
    fopts.num_nodes = 24;
    fopts.sf_scale = model_sf / physical_sf;
    fopts.faults = wimpi::cluster::FaultPlan::Generate(fault_seed, 24);
    const wimpi::cluster::WimpiCluster faulty(db, fopts);
    std::cout << "\nDEGRADED MODE: 24-node cluster, fault seed " << fault_seed
              << " (" << fopts.faults.ToString() << ")\n";
    TablePrinter ft({"Query", "clean (s)", "faulted (s)", "degraded (s)",
                     "retries", "reassigned", "nodes lost"});
    for (const int q : queries) {
      auto r = faulty.Run(q, model);
      if (!r.ok()) {
        std::fprintf(stderr, "[bench] Q%d failed under faults: %s\n", q,
                     r.status().ToString().c_str());
        return 1;
      }
      ft.AddRow({"Q" + std::to_string(q),
                 TablePrinter::Fixed(rows.at("wimpi-24").at(q), 3),
                 TablePrinter::Fixed(r->total_seconds, 3),
                 TablePrinter::Fixed(r->degraded_seconds, 3),
                 std::to_string(r->retries),
                 std::to_string(r->reassigned_partitions),
                 std::to_string(r->nodes_failed)});
      fault_runs.emplace(q, std::move(*r));
    }
    ft.Print(std::cout);
    if (!trace_path.empty()) {
      wimpi::obs::TraceSink::Global().set_enabled(false);
      if (!wimpi::obs::TraceSink::Global().WriteFile(trace_path)) return 1;
      std::fprintf(stderr, "[bench] wrote trace %s\n", trace_path.c_str());
    }
    if (!events_path.empty()) {
      wimpi::obs::EventLog::Global().set_enabled(false);
      if (!wimpi::obs::EventLog::Global().WriteFile(events_path)) return 1;
      std::fprintf(stderr, "[bench] wrote event log %s\n",
                   events_path.c_str());
    }
  }

  // --- Machine-readable artifact (--json=path) ---
  const std::string json_path = cli.GetString("json", "");
  if (!json_path.empty()) {
    // Server rows via the standard shape, then the simulated cluster rows
    // (also modeled/deterministic, so the regression gate covers them).
    wimpi::bench::RunArtifact artifact =
        RuntimesArtifact("table3_sf10", model_sf, runtimes, runs);
    for (const auto& name : wimpi_names) {
      for (const int q : queries) {
        artifact.rows[name]["Q" + std::to_string(q)] = rows.at(name).at(q);
      }
    }
    // Degraded-mode series: modeled values, so the regression gate covers
    // them too (metric names avoid the noisy "seconds"/"wall" patterns on
    // purpose -- everything here is deterministic).
    if (fault_seed != 0) {
      auto& f = artifact.rows["faults"];
      f["seed"] = static_cast<double>(fault_seed);
      for (const int q : queries) {
        const auto& r = fault_runs.at(q);
        const std::string base = "Q" + std::to_string(q) + "_";
        f[base + "total_s"] = r.total_seconds;
        f[base + "clean_s"] = rows.at("wimpi-24").at(q);
        f[base + "degraded_s"] = r.degraded_seconds;
        f[base + "retries"] = r.retries;
        f[base + "reassigned"] = r.reassigned_partitions;
        // Straggler signal, gated like the rest (modeled, deterministic).
        f[base + "busy_skew"] = r.node_rollups.at("node.busy_s.skew");
        // Full per-node rollups into the v2 section.
        for (const auto& [name, v] : r.node_rollups) {
          artifact.rollups["Q" + std::to_string(q) + "." + name] = v;
        }
      }
    }
    if (!WriteArtifact(json_path, artifact)) return 1;
  }
  return 0;
}
