// Reproduces Table III (TPC-H SF 10: servers vs the WIMPI cluster at
// 4-24 nodes) and the right half of Figure 3. Server rows are modeled
// single-node runs projected to SF 10; WIMPI rows are simulated distributed
// executions (real partial plans per node + network/merge/memory-pressure
// model).
#include <cstdio>
#include <iostream>

#include "analysis/metrics.h"
#include "bench_util.h"
#include "cluster/wimpi_cluster.h"
#include "common/cli.h"
#include "common/table_printer.h"
#include "paper_data.h"

int main(int argc, char** argv) {
  using wimpi::TablePrinter;
  using namespace wimpi::bench;

  const wimpi::CommandLine cli(argc, argv);
  const double physical_sf = cli.GetDouble("physical-sf", 0.1);
  const double model_sf = cli.GetDouble("model-sf", 10.0);

  const wimpi::engine::Database db = LoadDb(physical_sf);
  const wimpi::hw::CostModel model;
  const auto& queries = PaperSf10Queries();

  // --- Server rows ---
  const auto runs = CollectQueryStats(db, model_sf / physical_sf, queries);
  const auto runtimes = ModelRuntimes(runs, model);

  std::map<std::string, std::map<int, double>> rows;  // row name -> q -> s
  for (const auto& p : wimpi::hw::AllProfiles()) {
    if (p.name == "pi3b+") continue;  // a single Pi cannot hold SF 10
    for (const int q : queries) rows[p.name][q] = runtimes.at(q).at(p.name);
  }

  // --- WIMPI rows ---
  for (const int nodes : PaperClusterSizes()) {
    wimpi::cluster::ClusterOptions opts;
    opts.num_nodes = nodes;
    opts.sf_scale = model_sf / physical_sf;
    const wimpi::cluster::WimpiCluster wimpi(db, opts);
    const std::string name = "wimpi-" + std::to_string(nodes);
    for (const int q : queries) {
      rows[name][q] = wimpi.Run(q, model).total_seconds;
    }
    std::fprintf(stderr, "[bench] simulated %d-node cluster\n", nodes);
  }

  auto print_rows = [&](const std::vector<std::string>& names) {
    std::vector<std::string> header = {"Name"};
    for (const int q : queries) header.push_back("Q" + std::to_string(q));
    header.push_back("paper Q1");
    TablePrinter t(header);
    for (const auto& name : names) {
      std::vector<std::string> row = {name};
      for (const int q : queries) {
        row.push_back(TablePrinter::Fixed(rows.at(name).at(q), 3));
      }
      row.push_back(PaperTable3().count(name)
                        ? TablePrinter::Fixed(PaperTable3().at(name)[0], 3)
                        : "-");
      t.AddRow(std::move(row));
    }
    t.Print(std::cout);
  };

  std::cout << "TABLE III: modeled runtimes (s) for SF " << model_sf << "\n";
  std::vector<std::string> server_names;
  for (const auto& p : wimpi::hw::AllProfiles()) {
    if (p.name != "pi3b+") server_names.push_back(p.name);
  }
  print_rows(server_names);
  std::vector<std::string> wimpi_names;
  for (const int nodes : PaperClusterSizes()) {
    wimpi_names.push_back("wimpi-" + std::to_string(nodes));
  }
  print_rows(wimpi_names);

  // --- Shape checks the paper emphasizes ---
  std::cout << "\nShape checks vs the paper:\n";
  const double q1_4 = rows.at("wimpi-4").at(1);
  const double q1_24 = rows.at("wimpi-24").at(1);
  std::printf(
      "  Q1 cliff: 4 nodes %.1fs -> 24 nodes %.3fs (%.0fx jump; paper "
      "57.8s -> 0.678s, 85x)\n",
      q1_4, q1_24, q1_4 / q1_24);
  std::printf("  Q13 flat: 4 nodes %.1fs vs 24 nodes %.1fs (paper: 103.6s at "
              "every size)\n",
              rows.at("wimpi-4").at(13), rows.at("wimpi-24").at(13));
  int beats = 0;
  for (const int q : queries) {
    if (rows.at("wimpi-24").at(q) < rows.at("op-e5").at(q)) ++beats;
  }
  std::printf(
      "  wimpi-24 beats op-e5 on %d of 8 queries (paper: WIMPI outperforms "
      "at least one comparison point on 5 of 8)\n",
      beats);

  // --- Figure 3 (right): speedups over wimpi-24 ---
  std::cout << "\nFIGURE 3 (right): speedup over the 24-node WIMPI cluster\n";
  TablePrinter fig3({"Name", "median speedup", "min", "max", "paper median"});
  for (const auto& name : server_names) {
    std::vector<double> speedups, paper_speedups;
    for (size_t i = 0; i < queries.size(); ++i) {
      const int q = queries[i];
      speedups.push_back(rows.at("wimpi-24").at(q) / rows.at(name).at(q));
      paper_speedups.push_back(PaperTable3().at("wimpi-24")[i] /
                               PaperTable3().at(name)[i]);
    }
    auto mm = std::minmax_element(speedups.begin(), speedups.end());
    fig3.AddRow({name,
                 TablePrinter::Multiplier(wimpi::analysis::Median(speedups)),
                 TablePrinter::Multiplier(*mm.first),
                 TablePrinter::Multiplier(*mm.second),
                 TablePrinter::Multiplier(
                     wimpi::analysis::Median(paper_speedups))});
  }
  fig3.Print(std::cout);

  // --- Machine-readable artifact (--json=path) ---
  const std::string json_path = cli.GetString("json", "");
  if (!json_path.empty()) {
    // Server rows via the standard shape, then the simulated cluster rows
    // (also modeled/deterministic, so the regression gate covers them).
    wimpi::bench::RunArtifact artifact =
        RuntimesArtifact("table3_sf10", model_sf, runtimes, runs);
    for (const auto& name : wimpi_names) {
      for (const int q : queries) {
        artifact.rows[name]["Q" + std::to_string(q)] = rows.at(name).at(q);
      }
    }
    if (!WriteArtifact(json_path, artifact)) return 1;
  }
  return 0;
}
