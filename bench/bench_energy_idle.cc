// Reproduces the §III-B2 idle-power discussion: energy proportionality of
// the Pi vs traditional servers, and the benefit of powering down idle
// WIMPI nodes (fine-grained resource control).
#include <cstdio>
#include <iostream>

#include "analysis/power.h"
#include "common/table_printer.h"
#include "hw/profile.h"

int main() {
  using wimpi::TablePrinter;
  using namespace wimpi::analysis;

  std::cout << "Energy proportionality (1.0 = power scales perfectly with "
               "load):\n";
  TablePrinter t({"Config", "active W", "idle W", "proportionality"});
  for (const auto* p : wimpi::hw::OnPremProfiles()) {
    const PowerState s = ServerPower(*p);
    t.AddRow({p->name, TablePrinter::Fixed(s.active_watts, 1),
              TablePrinter::Fixed(s.idle_watts, 1),
              TablePrinter::Fixed(EnergyProportionality(s), 2)});
  }
  const PowerState pi = PiNodePower();
  t.AddRow({"pi3b+ (node)", TablePrinter::Fixed(pi.active_watts, 1),
            TablePrinter::Fixed(pi.idle_watts, 1),
            TablePrinter::Fixed(EnergyProportionality(pi), 2)});
  t.Print(std::cout);

  // A cluster that is busy 10% of the day (the paper: "clusters often
  // spend a significant amount of time idle").
  const double day = 24 * 3600;
  const double busy = 0.10;
  std::cout << "\nDaily energy for a 10%-utilized deployment (kJ):\n";
  TablePrinter e({"Config", "energy kJ", "vs op-e5"});
  const double e5 = ServerDutyCycleEnergy(
      wimpi::hw::ProfileByName("op-e5"), day, busy);
  e.AddRow({"op-e5 (always on)", TablePrinter::Fixed(e5 / 1000, 0), "1.00x"});
  const double gold = ServerDutyCycleEnergy(
      wimpi::hw::ProfileByName("op-gold"), day, busy);
  e.AddRow({"op-gold (always on)", TablePrinter::Fixed(gold / 1000, 0),
            TablePrinter::Multiplier(e5 / gold)});
  const double wimpi_on = PiClusterDutyCycleEnergy(24, day, busy, 0);
  e.AddRow({"wimpi-24 (idle on)", TablePrinter::Fixed(wimpi_on / 1000, 0),
            TablePrinter::Multiplier(e5 / wimpi_on)});
  const double wimpi_off = PiClusterDutyCycleEnergy(24, day, busy, 20);
  e.AddRow({"wimpi-24 (20 off when idle)",
            TablePrinter::Fixed(wimpi_off / 1000, 0),
            TablePrinter::Multiplier(e5 / wimpi_off)});
  e.Print(std::cout);
  std::cout << "\nPaper reading (§III-B2): traditional servers have poor "
               "energy proportionality; WIMPI nodes are highly "
               "proportional and can be powered off individually, and boot "
               "fast enough to follow demand.\n";
  return 0;
}
