// QphH-style concurrent-streams throughput benchmark for the query
// service (ISSUE #6): N closed-loop streams each run all 22 TPC-H queries
// (stream-specific order) through one QueryService sharing the process
// ThreadPool, under admission control against the configured node budget.
// Reports queries/sec and latency percentiles, and verifies two hard
// properties, exiting nonzero when either fails:
//   * every answer is bit-identical to the same plan run in isolation
//     (same thread count and morsel size — scheduler-independence);
//   * peak reserved memory never exceeds the budget.
//
// Artifact (--json=<path>): series "throughput" with deterministic gated
// metrics (completed/rejected counts, per-query checksums, pipeline/task
// counts, violation flags) plus measured wall metrics (informational
// unless --wall-tol): wall_seconds, queries_per_wall_second,
// mean_latency_seconds, and p50/p95/p99 latency.
//
// Observability hooks (ISSUE #7):
//   --slo-us N          per-query latency objective; enables the SLO
//                       tracker and the flight recorder's latency trigger
//   --slo-target F      attainment target for burn-rate (default 0.99)
//   --straggler-ms N    injected sleep making stream 0's --straggler-query
//                       a guaranteed slow query
//   --flight-dump PATH  retroactive Chrome-trace dump path for triggers
//   --slow-log PATH     write the slow-query log (JSONL) after the run
//   --expo PATH         write the Prometheus exposition after the run
//   --flight-off        disable the always-on flight recorder (overhead
//                       A/B: run once with this flag, once without, and
//                       gate mean_latency via wimpi_bench_compare --only)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/cli.h"
#include "common/table_printer.h"
#include "engine/executor.h"
#include "obs/export/exposition.h"
#include "obs/flight/flight_recorder.h"
#include "obs/flight/slow_query_log.h"
#include "obs/metrics.h"
#include "service/admission.h"
#include "service/query_service.h"
#include "storage/column.h"
#include "tpch/queries.h"

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

using wimpi::bench::RelationChecksum;

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t idx = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  using wimpi::TablePrinter;
  const wimpi::CommandLine cli(argc, argv);
  const int streams = static_cast<int>(cli.GetInt("streams", 8));
  const double physical_sf = cli.GetDouble("physical-sf", 0.01);
  const int64_t budget_mb = cli.GetInt("budget-mb", 1024);
  const int max_active = static_cast<int>(cli.GetInt("active", 4));
  const int query_threads = static_cast<int>(cli.GetInt("query-threads", 4));
  const int laps = static_cast<int>(cli.GetInt("laps", 1));
  const int64_t morsel_rows = cli.GetInt("morsel-rows", 64 * 1024);
  const int64_t slo_us = cli.GetInt("slo-us", 0);
  const double slo_target = cli.GetDouble("slo-target", 0.99);
  const int64_t straggler_ms = cli.GetInt("straggler-ms", 0);
  const int straggler_query = static_cast<int>(cli.GetInt("straggler-query", 6));
  const std::string flight_dump = cli.GetString("flight-dump", "");
  const std::string slow_log = cli.GetString("slow-log", "");
  const std::string expo_path = cli.GetString("expo", "");
  if (cli.GetBool("flight-off", false)) {
    wimpi::obs::flight::FlightRecorder::Global().set_enabled(false);
  }

  const wimpi::engine::Database db = wimpi::bench::LoadDb(physical_sf);
  const std::vector<int> queries = wimpi::bench::AllQueryNumbers();

  // ---- Phase 0: isolated reference runs ----
  // Same thread count and morsel size as the service will use, so the
  // concurrent answers must match bit-for-bit (morsel boundaries and merge
  // order are scheduler-independent).
  std::map<int, uint64_t> isolated_checksum;
  std::map<int, int64_t> estimate;
  double isolated_sum_seconds = 0;
  for (const int q : queries) {
    wimpi::engine::Executor ex;
    ex.set_num_threads(query_threads);
    ex.set_morsel_rows(morsel_rows);
    wimpi::exec::QueryStats stats;
    const double start = NowSeconds();
    const wimpi::exec::Relation r = ex.Run(
        [&](wimpi::exec::QueryStats* s) { return wimpi::tpch::RunQuery(q, db, s); },
        &stats);
    isolated_sum_seconds += NowSeconds() - start;
    isolated_checksum[q] = RelationChecksum(r);
    estimate[q] = wimpi::service::EstimateWorkingSetBytes(stats);
  }

  // ---- Phase 1: N concurrent closed-loop streams ----
  wimpi::service::ServiceOptions sopts;
  sopts.budget_bytes = budget_mb << 20;
  sopts.max_active = max_active;
  sopts.max_queue = streams * static_cast<int>(queries.size());
  sopts.query_threads = query_threads;
  sopts.morsel_rows = morsel_rows;
  if (slo_us > 0) {
    sopts.slo.default_objective_us = slo_us;
    sopts.slo.target = slo_target;
  }
  sopts.flight.dump_path = flight_dump;
  wimpi::service::QueryService svc(sopts);

  std::atomic<int64_t> completed{0}, rejected{0}, failed{0}, mismatches{0};
  std::atomic<int64_t> pipelines{0}, tasks{0};
  std::vector<std::vector<double>> stream_latencies(
      static_cast<size_t>(streams));

  const double run_start = NowSeconds();
  {
    std::vector<std::thread> clients;
    for (int s = 0; s < streams; ++s) {
      clients.emplace_back([&, s] {
        wimpi::service::ClientSession session(&svc,
                                              "stream" + std::to_string(s));
        auto& latencies = stream_latencies[static_cast<size_t>(s)];
        for (int lap = 0; lap < laps; ++lap) {
          for (size_t i = 0; i < queries.size(); ++i) {
            // QphH-style stream ordering: each stream starts at a
            // different rotation of the query sequence.
            const int q = queries[(i + static_cast<size_t>(s) * 5) %
                                  queries.size()];
            wimpi::service::QuerySpec spec;
            spec.label = "q" + std::to_string(q);
            spec.estimated_bytes = estimate[q];
            // Straggler injection: stream 0's copy of the chosen query
            // sleeps inside its plan, making it a guaranteed slow query
            // for the flight recorder / slow-query-log CI checks.
            const bool straggle =
                straggler_ms > 0 && s == 0 && q == straggler_query;
            spec.plan = [&db, q, straggle,
                         straggler_ms](wimpi::exec::QueryStats* st) {
              if (straggle) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(straggler_ms));
              }
              return wimpi::tpch::RunQuery(q, db, st);
            };
            const double start = NowSeconds();
            wimpi::service::QueryTicket ticket =
                session.Submit(std::move(spec));
            const wimpi::Status status = ticket.Wait();
            latencies.push_back(NowSeconds() - start);
            if (status.ok()) {
              completed.fetch_add(1);
              pipelines.fetch_add(ticket.pipelines());
              tasks.fetch_add(ticket.tasks());
              if (RelationChecksum(ticket.TakeResult()) !=
                  isolated_checksum[q]) {
                mismatches.fetch_add(1);
                std::fprintf(stderr,
                             "ANSWER MISMATCH: stream %d q%d differs from "
                             "isolated execution\n",
                             s, q);
              }
            } else if (status.code() ==
                       wimpi::StatusCode::kResourceExhausted) {
              rejected.fetch_add(1);
            } else {
              failed.fetch_add(1);
              std::fprintf(stderr, "stream %d q%d: %s\n", s, q,
                           status.ToString().c_str());
            }
          }
        }
      });
    }
    for (auto& t : clients) t.join();
  }
  const double wall_seconds = NowSeconds() - run_start;

  const int64_t peak_reserved = svc.admission().tracker().peak();
  const int64_t budget_bytes = svc.admission().budget_bytes();
  const bool over_budget = budget_bytes > 0 && peak_reserved > budget_bytes;

  std::vector<double> all_latencies;
  for (const auto& v : stream_latencies) {
    all_latencies.insert(all_latencies.end(), v.begin(), v.end());
  }
  std::sort(all_latencies.begin(), all_latencies.end());
  const double p50 = Percentile(all_latencies, 0.50);
  const double p95 = Percentile(all_latencies, 0.95);
  const double p99 = Percentile(all_latencies, 0.99);
  double mean_latency = 0;
  for (const double l : all_latencies) mean_latency += l;
  if (!all_latencies.empty()) mean_latency /= all_latencies.size();
  const int64_t total = completed.load() + rejected.load() + failed.load();
  const double qps = wall_seconds > 0 ? completed.load() / wall_seconds : 0;

  std::printf("\nThroughput: %d streams x %d laps x %zu queries at SF %.2f "
              "(budget %lld MB, %d active, %d threads/query)\n\n",
              streams, laps, queries.size(), physical_sf,
              static_cast<long long>(budget_mb), max_active, query_threads);
  TablePrinter t({"Metric", "Value"});
  t.AddRow({"queries completed", std::to_string(completed.load())});
  t.AddRow({"queries rejected", std::to_string(rejected.load())});
  t.AddRow({"queries failed", std::to_string(failed.load())});
  t.AddRow({"answer mismatches", std::to_string(mismatches.load())});
  t.AddRow({"wall seconds", TablePrinter::Fixed(wall_seconds, 3)});
  t.AddRow({"queries / sec", TablePrinter::Fixed(qps, 2)});
  t.AddRow({"latency mean (s)", TablePrinter::Fixed(mean_latency, 4)});
  t.AddRow({"latency p50 (s)", TablePrinter::Fixed(p50, 4)});
  t.AddRow({"latency p95 (s)", TablePrinter::Fixed(p95, 4)});
  t.AddRow({"latency p99 (s)", TablePrinter::Fixed(p99, 4)});
  t.AddRow({"isolated sum (s)", TablePrinter::Fixed(isolated_sum_seconds, 3)});
  t.AddRow({"peak reserved (MB)",
            TablePrinter::Fixed(peak_reserved / (1024.0 * 1024.0), 1)});
  t.Print(std::cout);
  std::printf("\nStream-count vs tail-latency: raise --streams and watch "
              "p99 grow while queries/sec saturates near the pool's "
              "capacity (EXPERIMENTS.md).\n");

  // ---- Observability outputs (ISSUE #7) ----
  const auto scalars = wimpi::obs::MetricsRegistry::Global().ScalarSnapshot();
  if (slo_us > 0) {
    std::printf("\nSLO (objective %lld us, target %.3f):\n",
                static_cast<long long>(slo_us), slo_target);
    TablePrinter st({"Metric", "Value"});
    for (const auto& [name, value] : scalars) {
      if (name.rfind("slo.", 0) == 0) {
        st.AddRow({name, TablePrinter::Fixed(value, 4)});
      }
    }
    st.Print(std::cout);
    auto& slog = wimpi::obs::flight::SlowQueryLog::Global();
    std::printf("slow-query log: %lld entries (total %lld)\n",
                static_cast<long long>(slog.size()),
                static_cast<long long>(slog.total()));
  }
  if (!slow_log.empty() &&
      !wimpi::obs::flight::SlowQueryLog::Global().WriteFile(slow_log)) {
    std::fprintf(stderr, "FAIL: cannot write slow-query log %s\n",
                 slow_log.c_str());
    return 1;
  }
  if (!expo_path.empty()) {
    const std::string text = wimpi::obs::ExpositionFormat::WriteGlobal();
    std::FILE* f = std::fopen(expo_path.c_str(), "w");
    if (f == nullptr ||
        std::fwrite(text.data(), 1, text.size(), f) != text.size() ||
        std::fclose(f) != 0) {
      std::fprintf(stderr, "FAIL: cannot write exposition %s\n",
                   expo_path.c_str());
      return 1;
    }
  }

  // ---- Machine-readable artifact ----
  const std::string json_path = cli.GetString("json", "");
  if (!json_path.empty()) {
    wimpi::bench::RunArtifact artifact =
        wimpi::bench::MakeArtifact("throughput", physical_sf);
    auto& row = artifact.rows["throughput"];
    // Deterministic (gated at the default tolerance).
    row["completed"] = static_cast<double>(completed.load());
    row["rejected"] = static_cast<double>(rejected.load());
    row["failed"] = static_cast<double>(failed.load());
    row["answer_mismatches"] = static_cast<double>(mismatches.load());
    row["mem_peak_over_budget"] = over_budget ? 1.0 : 0.0;
    row["pipelines"] = static_cast<double>(pipelines.load());
    row["tasks"] = static_cast<double>(tasks.load());
    for (const int q : queries) {
      // Folded to 32 bits so the value is exact in a double.
      row["q" + std::to_string(q) + ".checksum"] =
          static_cast<double>(isolated_checksum[q] & 0xFFFFFFFFull);
    }
    // Measured (informational unless --wall-tol).
    row["wall_seconds"] = wall_seconds;
    row["queries_per_wall_second"] = qps;
    row["mean_latency_seconds"] = mean_latency;
    row["p50_wall_seconds"] = p50;
    row["p95_wall_seconds"] = p95;
    row["p99_wall_seconds"] = p99;
    row["isolated_sum_seconds"] = isolated_sum_seconds;
    if (!wimpi::bench::WriteArtifact(json_path, artifact)) return 1;
  }

  if (mismatches.load() != 0) {
    std::fprintf(stderr, "FAIL: %lld answers differed from isolated runs\n",
                 static_cast<long long>(mismatches.load()));
    return 1;
  }
  if (over_budget) {
    std::fprintf(stderr,
                 "FAIL: peak reserved %lld bytes exceeded budget %lld\n",
                 static_cast<long long>(peak_reserved),
                 static_cast<long long>(budget_bytes));
    return 1;
  }
  if (failed.load() != 0 || total != streams * laps *
                                         static_cast<int64_t>(queries.size())) {
    std::fprintf(stderr, "FAIL: %lld queries failed\n",
                 static_cast<long long>(failed.load()));
    return 1;
  }
  return 0;
}
