// Diffs two benchmark artifacts (the --json output of the runtime benches)
// with noise-aware thresholds; exit code 0 = no regressions, 1 = regression
// or structural mismatch, 2 = usage/read error. The CI bench-smoke stage
// gates BENCH_*.json artifacts against committed baselines with this tool.
//
//   wimpi_bench_compare <baseline.json> <current.json>
//       [--rel-tol 0.02]   relative tolerance for modeled metrics
//       [--abs-floor 1e-6] ignore absolute differences below this
//       [--wall-tol 0]     gate measured (wall/seconds/speedup) metrics;
//                          0 leaves them informational (different hosts)
//       [--allow-missing]  don't fail when baseline metrics disappeared
//       [--only <substr>]  compare only metrics whose name contains this
#include <cstdio>
#include <string>

#include "artifact.h"
#include "common/cli.h"

int main(int argc, char** argv) {
  const wimpi::CommandLine cli(argc, argv);
  if (cli.positional().size() != 2) {
    std::fprintf(stderr,
                 "usage: wimpi_bench_compare <baseline.json> <current.json> "
                 "[--rel-tol 0.02] [--wall-tol 0] [--abs-floor 1e-6] "
                 "[--allow-missing] [--only <substr>]\n");
    return 2;
  }

  wimpi::bench::RunArtifact base, current;
  std::string error;
  if (!wimpi::bench::ReadArtifact(cli.positional()[0], &base, &error)) {
    std::fprintf(stderr, "baseline: %s\n", error.c_str());
    return 2;
  }
  if (!wimpi::bench::ReadArtifact(cli.positional()[1], &current, &error)) {
    std::fprintf(stderr, "current: %s\n", error.c_str());
    return 2;
  }

  wimpi::bench::CompareOptions opts;
  opts.rel_tol = cli.GetDouble("rel-tol", opts.rel_tol);
  opts.abs_floor = cli.GetDouble("abs-floor", opts.abs_floor);
  opts.wall_tol = cli.GetDouble("wall-tol", opts.wall_tol);
  opts.fail_on_missing = !cli.GetBool("allow-missing", false);
  opts.only = cli.GetString("only", "");

  const wimpi::bench::CompareResult result =
      wimpi::bench::CompareArtifacts(base, current, opts);
  std::printf("%s", result.Format().c_str());
  return result.ok ? 0 : 1;
}
