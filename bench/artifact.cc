#include "artifact.h"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/json.h"
#include "obs/perf_counters.h"

#ifndef WIMPI_GIT_SHA
#define WIMPI_GIT_SHA "unknown"
#endif

namespace wimpi::bench {

namespace {

// Measured quantities carry host noise; the comparer gates them separately
// (CompareOptions.wall_tol). Matched on the metric name by convention.
bool IsMeasuredMetric(const std::string& metric) {
  return metric.find("wall") != std::string::npos ||
         metric.find("seconds") != std::string::npos ||
         metric.find("speedup") != std::string::npos;
}

void WriteStringMap(JsonWriter& w, const char* key,
                    const std::map<std::string, double>& m) {
  w.Key(key).BeginObject();
  for (const auto& [k, v] : m) w.Key(k).Double(v);
  w.EndObject();
}

bool ReadStringMap(const JsonValue& obj, const std::string& key,
                   std::map<std::string, double>* out) {
  const JsonValue* m = obj.Find(key);
  if (m == nullptr) return true;  // optional section
  if (!m->is_object()) return false;
  for (const auto& [k, v] : m->AsObject()) {
    if (!v.is_number()) return false;
    (*out)[k] = v.AsDouble();
  }
  return true;
}

}  // namespace

RunArtifact MakeArtifact(const std::string& bench, double model_sf) {
  RunArtifact a;
  a.bench = bench;
  a.model_sf = model_sf;
  a.git_sha = WIMPI_GIT_SHA;
  char host[256] = "unknown";
  if (gethostname(host, sizeof(host) - 1) != 0) {
    std::snprintf(host, sizeof(host), "unknown");
  }
  a.hostname = host;
  a.host_threads =
      std::max(1u, std::thread::hardware_concurrency());
  a.perf_available = obs::PerfCounters::Available();
  return a;
}

bool WriteArtifact(const std::string& path, const RunArtifact& a) {
  JsonWriter w;
  w.BeginObject()
      .Key("schema_version").Int(a.schema_version)
      .Key("bench").String(a.bench)
      .Key("git_sha").String(a.git_sha)
      .Key("model_sf").Double(a.model_sf)
      .Key("unit").String(a.unit)
      .Key("host").BeginObject()
          .Key("hostname").String(a.hostname)
          .Key("threads").Int(a.host_threads)
      .EndObject()
      .Key("perf_available").Bool(a.perf_available);
  WriteStringMap(w, "perf", a.perf);
  WriteStringMap(w, "metrics", a.metrics);
  WriteStringMap(w, "rollups", a.rollups);
  w.Key("rows").BeginObject();
  for (const auto& [series, metrics] : a.rows) {
    w.Key(series).BeginObject();
    for (const auto& [metric, value] : metrics) {
      w.Key(metric).Double(value);
    }
    w.EndObject();
  }
  w.EndObject().EndObject();

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench] cannot write artifact %s\n", path.c_str());
    return false;
  }
  const std::string& json = w.str();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  if (written != json.size()) {
    std::fprintf(stderr, "[bench] short write to %s\n", path.c_str());
    return false;
  }
  std::fprintf(stderr, "[bench] wrote artifact %s\n", path.c_str());
  return true;
}

bool ReadArtifact(const std::string& path, RunArtifact* out,
                  std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot read " + path;
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();

  JsonValue doc;
  std::string parse_error;
  if (!JsonValue::Parse(text.str(), &doc, &parse_error)) {
    *error = path + ": " + parse_error;
    return false;
  }
  if (!doc.is_object()) {
    *error = path + ": artifact root must be an object";
    return false;
  }
  *out = RunArtifact{};
  out->schema_version =
      static_cast<int>(doc.GetDouble("schema_version", -1));
  if (out->schema_version < kArtifactMinSchemaVersion ||
      out->schema_version > kArtifactSchemaVersion) {
    *error = path + ": schema_version " +
             std::to_string(out->schema_version) + " (supported " +
             std::to_string(kArtifactMinSchemaVersion) + ".." +
             std::to_string(kArtifactSchemaVersion) + ")";
    return false;
  }
  out->bench = doc.GetString("bench", "");
  out->git_sha = doc.GetString("git_sha", "unknown");
  out->model_sf = doc.GetDouble("model_sf", 0);
  out->unit = doc.GetString("unit", "seconds");
  if (const JsonValue* host = doc.Find("host"); host != nullptr) {
    out->hostname = host->GetString("hostname", "unknown");
    out->host_threads = static_cast<int>(host->GetDouble("threads", 0));
  }
  if (const JsonValue* pa = doc.Find("perf_available"); pa != nullptr) {
    out->perf_available = pa->AsBool();
  }
  if (!ReadStringMap(doc, "perf", &out->perf) ||
      !ReadStringMap(doc, "metrics", &out->metrics) ||
      !ReadStringMap(doc, "rollups", &out->rollups)) {
    *error = path + ": malformed perf/metrics/rollups section";
    return false;
  }
  const JsonValue* rows = doc.Find("rows");
  if (rows == nullptr || !rows->is_object()) {
    *error = path + ": missing rows object";
    return false;
  }
  for (const auto& [series, metrics] : rows->AsObject()) {
    if (!metrics.is_object()) {
      *error = path + ": series " + series + " is not an object";
      return false;
    }
    for (const auto& [metric, value] : metrics.AsObject()) {
      if (!value.is_number()) {
        *error = path + ": " + series + "/" + metric + " is not a number";
        return false;
      }
      out->rows[series][metric] = value.AsDouble();
    }
  }
  return true;
}

CompareResult CompareArtifacts(const RunArtifact& base,
                               const RunArtifact& current,
                               const CompareOptions& opts) {
  CompareResult r;
  if (base.bench != current.bench) {
    r.errors.push_back("bench mismatch: baseline '" + base.bench +
                       "' vs current '" + current.bench + "'");
  }
  if (base.model_sf != current.model_sf) {
    r.errors.push_back("model_sf mismatch: baseline " +
                       std::to_string(base.model_sf) + " vs current " +
                       std::to_string(current.model_sf));
  }
  if (base.unit != current.unit) {
    r.errors.push_back("unit mismatch: baseline '" + base.unit +
                       "' vs current '" + current.unit + "'");
  }
  if (base.git_sha != current.git_sha) {
    r.notes.push_back("comparing " + base.git_sha + " -> " +
                      current.git_sha);
  }
  if (base.hostname != current.hostname) {
    r.notes.push_back(
        "different hosts (" + base.hostname + " vs " + current.hostname +
        "): measured metrics are not comparable, modeled ones are");
  }

  int compared = 0;
  int skipped_measured = 0;
  // Which series were actually gated, and how many metrics in each: the
  // summary prints this so a shrinking comparison (wrong --only filter,
  // series silently dropped) is visible even when nothing regressed.
  std::map<std::string, int> compared_by_series;
  const auto selected = [&opts](const std::string& metric) {
    return opts.only.empty() || metric.find(opts.only) != std::string::npos;
  };
  for (const auto& [series, metrics] : base.rows) {
    const auto cur_series = current.rows.find(series);
    for (const auto& [metric, base_v] : metrics) {
      if (!selected(metric)) continue;
      const double* cur_v = nullptr;
      if (cur_series != current.rows.end()) {
        const auto it = cur_series->second.find(metric);
        if (it != cur_series->second.end()) cur_v = &it->second;
      }
      if (cur_v == nullptr) {
        if (opts.fail_on_missing) {
          r.errors.push_back("missing in current artifact: " + series +
                             "/" + metric);
        }
        continue;
      }
      const bool measured = IsMeasuredMetric(metric);
      const double tol = measured ? opts.wall_tol : opts.rel_tol;
      if (measured && opts.wall_tol <= 0) {
        ++skipped_measured;
        continue;
      }
      ++compared;
      ++compared_by_series[series];
      const double diff = *cur_v - base_v;
      if (std::fabs(diff) <= opts.abs_floor) continue;
      const double denom = std::max(std::fabs(base_v), opts.abs_floor);
      if (std::fabs(diff) / denom <= tol) continue;
      CompareResult::Diff d;
      d.series = series;
      d.metric = metric;
      d.base = base_v;
      d.current = *cur_v;
      d.regression = diff > 0;  // unit is seconds: higher is worse
      r.diffs.push_back(std::move(d));
    }
  }
  // Rollups (v2+) are modeled cluster aggregations: deterministic, gated
  // at rel_tol. A v1 baseline has none, so nothing is compared against it;
  // once a baseline carries them, coverage must not shrink.
  for (const auto& [name, base_v] : base.rollups) {
    if (!selected(name)) continue;
    const auto it = current.rollups.find(name);
    if (it == current.rollups.end()) {
      if (opts.fail_on_missing) {
        r.errors.push_back("missing in current artifact: rollups/" + name);
      }
      continue;
    }
    ++compared;
    ++compared_by_series["rollups"];
    const double diff = it->second - base_v;
    if (std::fabs(diff) <= opts.abs_floor) continue;
    const double denom = std::max(std::fabs(base_v), opts.abs_floor);
    if (std::fabs(diff) / denom <= opts.rel_tol) continue;
    CompareResult::Diff d;
    d.series = "rollups";
    d.metric = name;
    d.base = base_v;
    d.current = it->second;
    d.regression = diff > 0;
    r.diffs.push_back(std::move(d));
  }

  // New metrics in the current artifact are fine (coverage grew).
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "compared %d metric(s), %d measured metric(s) %s", compared,
                skipped_measured,
                opts.wall_tol > 0 ? "gated" : "informational (no --wall-tol)");
  r.notes.push_back(buf);
  if (compared > 0) {
    std::string by_series = "gated series:";
    for (const auto& [series, n] : compared_by_series) {
      by_series += " " + series + " (" + std::to_string(n) + ")";
    }
    r.notes.push_back(std::move(by_series));
  }
  if (!opts.only.empty()) {
    r.notes.push_back("filter --only '" + opts.only +
                      "' restricted the comparison");
  }

  for (const auto& d : r.diffs) {
    if (d.regression) {
      r.ok = false;
      break;
    }
  }
  if (!r.errors.empty()) r.ok = false;
  return r;
}

std::string CompareResult::Format() const {
  std::ostringstream out;
  for (const auto& e : errors) out << "ERROR: " << e << "\n";
  for (const auto& d : diffs) {
    char buf[220];
    const double pct =
        d.base != 0 ? 100.0 * (d.current - d.base) / std::fabs(d.base) : 0;
    std::snprintf(buf, sizeof(buf), "%s: %s/%s %.6g -> %.6g (%+.1f%%)\n",
                  d.regression ? "REGRESSION" : "improvement",
                  d.series.c_str(), d.metric.c_str(), d.base, d.current,
                  pct);
    out << buf;
  }
  for (const auto& n : notes) out << "note: " << n << "\n";
  out << (ok ? "PASS" : "FAIL") << "\n";
  return out.str();
}

}  // namespace wimpi::bench
