#ifndef WIMPI_BENCH_ARTIFACT_H_
#define WIMPI_BENCH_ARTIFACT_H_

#include <map>
#include <string>
#include <vector>

namespace wimpi::bench {

// Schema-versioned benchmark run artifact: the stable machine-readable
// record every runtime bench emits with --json=<path>, compared across
// commits by wimpi_bench_compare. Documented in README.md ("Benchmark
// artifacts & regression gate"). Bump kArtifactSchemaVersion on any
// incompatible change; the reader accepts every version back to
// kArtifactMinSchemaVersion (older artifacts simply lack the newer
// optional sections) and refuses anything newer than it knows.
//
// Values are grouped as series -> metric -> value (all doubles, unit
// `unit`, lower is better). Conventions:
//   * modeled runtimes: series = hardware profile ("pi3b+", "wimpi-24"),
//     metric = "Q<n>";
//   * measured host quantities: metric name contains "wall", "seconds",
//     or "speedup" — the comparer treats those as noisy and only gates
//     them when --wall-tol is set.
//
// v2 adds the optional "rollups" section: cluster-level aggregations of
// per-node scalars (DistributedRun::node_rollups merged across queries),
// e.g. "Q1.node.busy_s.skew". Deterministic (modeled), so gateable.
inline constexpr int kArtifactSchemaVersion = 2;
inline constexpr int kArtifactMinSchemaVersion = 1;

struct RunArtifact {
  int schema_version = kArtifactSchemaVersion;
  std::string bench;            // e.g. "table2_sf1"
  std::string git_sha;          // build-time sha, "unknown" outside git
  double model_sf = 0;          // scale factor the numbers are modeled at
  std::string unit = "seconds";

  // Host fingerprint (informational; comparisons never require equality).
  std::string hostname;
  int host_threads = 0;

  // Whole-run perf-counter summary (from obs::PerfCounters); values keyed
  // by PerfEventName. perf_available false = counters could not be opened
  // (the map is then empty).
  bool perf_available = false;
  std::map<std::string, double> perf;

  // Optional process metrics snapshot (obs::MetricsRegistry scalars).
  std::map<std::string, double> metrics;

  // Optional (v2+) cluster rollups: per-node scalars aggregated to
  // min/max/sum/mean/skew, keyed "Q<n>.node.<metric>.<stat>".
  std::map<std::string, double> rollups;

  std::map<std::string, std::map<std::string, double>> rows;
};

// Fills the environment-derived fields: bench name, model_sf, git sha,
// hostname, thread count, and perf availability (one cheap probe).
RunArtifact MakeArtifact(const std::string& bench, double model_sf);

// Writes `a` as pretty-stable JSON (sorted keys via std::map). Returns
// false and logs to stderr when the file cannot be written.
bool WriteArtifact(const std::string& path, const RunArtifact& a);

// Parses an artifact written by WriteArtifact. Returns false and fills
// `*error` on unreadable files, malformed JSON, or a wrong schema version.
bool ReadArtifact(const std::string& path, RunArtifact* out,
                  std::string* error);

// ---------- comparison ----------

struct CompareOptions {
  // Relative tolerance for deterministic (modeled) metrics.
  double rel_tol = 0.02;
  // Absolute floor below which differences never count (noise in values
  // that are essentially zero).
  double abs_floor = 1e-6;
  // Tolerance for measured metrics (name contains wall/seconds/speedup);
  // <= 0 leaves them informational only.
  double wall_tol = 0;
  // A series/metric present in the baseline but missing from the current
  // artifact fails the comparison (coverage must not silently shrink).
  bool fail_on_missing = true;
  // When non-empty, only metrics whose name contains this substring are
  // compared (missing-metric checks included). Lets CI gate one measured
  // metric (e.g. "mean_latency") without gating the whole artifact.
  std::string only;
};

struct CompareResult {
  struct Diff {
    std::string series;
    std::string metric;
    double base = 0;
    double current = 0;
    bool regression = false;  // worse beyond tolerance (higher = worse)
  };
  bool ok = true;  // no regressions, no structural mismatch
  std::vector<Diff> diffs;           // beyond-tolerance changes (both ways)
  std::vector<std::string> errors;   // structural problems (version, ...)
  std::vector<std::string> notes;    // informational lines

  // Human-readable multi-line summary of the comparison.
  std::string Format() const;
};

// Compares `current` against `base`. Improvements beyond tolerance are
// reported but do not fail; regressions and structural mismatches set
// ok=false (wimpi_bench_compare exits nonzero).
CompareResult CompareArtifacts(const RunArtifact& base,
                               const RunArtifact& current,
                               const CompareOptions& opts);

}  // namespace wimpi::bench

#endif  // WIMPI_BENCH_ARTIFACT_H_
