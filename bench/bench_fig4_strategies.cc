// Reproduces Figure 4: the three hand-coded query execution strategies
// (data-centric, hybrid, access-aware) on the eight representative TPC-H
// queries at SF 1, single-threaded, on op-e5, op-gold, and the Pi 3B+.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/cli.h"
#include "common/table_printer.h"
#include "paper_data.h"
#include "strategies/strategies.h"

int main(int argc, char** argv) {
  using wimpi::TablePrinter;
  using wimpi::strategies::kAllStrategies;
  using wimpi::strategies::RunStrategy;
  using wimpi::strategies::Strategy;
  using wimpi::strategies::StrategyName;
  using namespace wimpi::bench;

  const wimpi::CommandLine cli(argc, argv);
  const double physical_sf = cli.GetDouble("physical-sf", 0.1);
  const double scale = 1.0 / physical_sf;  // model SF 1

  const wimpi::engine::Database db = LoadDb(physical_sf);
  const wimpi::hw::CostModel model;
  const std::vector<std::string> profiles = {"op-e5", "op-gold", "pi3b+"};

  // Modeled seconds per (profile, strategy, query), also the artifact rows:
  // series "<profile>.<strategy>", metric "Q<n>".
  std::map<std::string, std::map<std::string, double>> artifact_rows;

  std::cout << "FIGURE 4: execution strategies, modeled seconds at SF 1 "
               "(single-threaded)\n";
  for (const auto& prof_name : profiles) {
    const auto& prof = wimpi::hw::ProfileByName(prof_name);
    std::cout << "\n-- " << prof_name << " --\n";
    TablePrinter t({"Query", "data-centric", "hybrid", "access-aware",
                    "best", "worst"});
    for (const int q : PaperSf10Queries()) {
      std::map<Strategy, double> secs;
      for (const Strategy s : kAllStrategies) {
        wimpi::exec::QueryStats stats;
        RunStrategy(q, s, db, &stats);
        stats.Scale(scale);
        secs[s] = model.QuerySeconds(prof, stats, /*threads=*/1);
        artifact_rows[prof_name + "." + StrategyName(s)]
                     ["Q" + std::to_string(q)] = secs[s];
      }
      auto best = std::min_element(secs.begin(), secs.end(),
                                   [](const auto& a, const auto& b) {
                                     return a.second < b.second;
                                   });
      auto worst = std::max_element(secs.begin(), secs.end(),
                                    [](const auto& a, const auto& b) {
                                      return a.second < b.second;
                                    });
      t.AddRow({"Q" + std::to_string(q),
                TablePrinter::Fixed(secs[Strategy::kDataCentric], 3),
                TablePrinter::Fixed(secs[Strategy::kHybrid], 3),
                TablePrinter::Fixed(secs[Strategy::kAccessAware], 3),
                StrategyName(best->first), StrategyName(worst->first)});
    }
    t.Print(std::cout);
  }

  // Shape checks from the paper's discussion of Figure 4.
  std::cout << "\nShape checks vs the paper:\n"
               "  * access-aware should (almost) always be best, "
               "data-centric worst;\n"
               "  * the Pi's runtimes fall within 2-19x of the servers;\n"
               "  * the access-aware advantage is less pronounced on the Pi "
               "(limited memory bandwidth).\n";
  double pi_gain = 0, e5_gain = 0;
  int n = 0;
  for (const int q : PaperSf10Queries()) {
    std::map<std::string, std::map<Strategy, double>> secs;
    for (const Strategy s : kAllStrategies) {
      wimpi::exec::QueryStats stats;
      RunStrategy(q, s, db, &stats);
      stats.Scale(scale);
      secs["pi3b+"][s] = model.QuerySeconds(wimpi::hw::PiProfile(), stats, 1);
      secs["op-e5"][s] =
          model.QuerySeconds(wimpi::hw::ProfileByName("op-e5"), stats, 1);
    }
    pi_gain += secs["pi3b+"][Strategy::kDataCentric] /
               secs["pi3b+"][Strategy::kAccessAware];
    e5_gain += secs["op-e5"][Strategy::kDataCentric] /
               secs["op-e5"][Strategy::kAccessAware];
    ++n;
  }
  std::printf(
      "  measured: mean data-centric/access-aware ratio op-e5 %.2fx vs Pi "
      "%.2fx (paper: advantage shrinks on the Pi)\n",
      e5_gain / n, pi_gain / n);

  // --- Machine-readable artifact (--json=path) ---
  const std::string json_path = cli.GetString("json", "");
  if (!json_path.empty()) {
    wimpi::bench::RunArtifact artifact =
        wimpi::bench::MakeArtifact("fig4_strategies", /*model_sf=*/1.0);
    artifact.rows = std::move(artifact_rows);
    if (!wimpi::bench::WriteArtifact(json_path, artifact)) return 1;
  }
  return 0;
}
