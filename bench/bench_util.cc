#include "bench_util.h"

#include <chrono>
#include <cstdio>
#include <sstream>

#include "obs/trace.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace wimpi::bench {

engine::Database LoadDb(double physical_sf, uint64_t seed) {
  std::fprintf(stderr, "[bench] generating TPC-H at physical SF %.3g ...\n",
               physical_sf);
  const auto start = std::chrono::steady_clock::now();
  tpch::GenOptions opts;
  opts.scale_factor = physical_sf;
  opts.seed = seed;
  engine::Database db = tpch::GenerateDatabase(opts);
  const double s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  std::fprintf(stderr, "[bench] generated in %.1fs (%lld lineitem rows)\n",
               s,
               static_cast<long long>(db.table("lineitem").num_rows()));
  return db;
}

std::map<int, exec::QueryStats> CollectQueryStats(
    const engine::Database& db, double scale,
    const std::vector<int>& queries) {
  std::map<int, exec::QueryStats> out;
  for (const int q : queries) {
    exec::QueryStats stats;
    tpch::RunQuery(q, db, &stats);
    stats.Scale(scale);
    out[q] = std::move(stats);
  }
  return out;
}

std::map<int, std::map<std::string, double>> ModelRuntimes(
    const std::map<int, exec::QueryStats>& stats,
    const hw::CostModel& model) {
  std::map<int, std::map<std::string, double>> out;
  for (const auto& [q, s] : stats) {
    for (const auto& p : hw::AllProfiles()) {
      out[q][p.name] = model.QuerySeconds(p, s);
    }
  }
  return out;
}

std::vector<int> AllQueryNumbers() {
  std::vector<int> qs;
  for (int q = 1; q <= 22; ++q) qs.push_back(q);
  return qs;
}

bool WriteRuntimesJson(
    const std::string& path, const std::string& bench_name, double model_sf,
    const std::map<std::string, std::map<int, double>>& rows) {
  std::ostringstream out;
  out << "{\"bench\":\"" << obs::JsonEscape(bench_name)
      << "\",\"model_sf\":" << model_sf << ",\"unit\":\"seconds\","
      << "\"rows\":{";
  bool first_row = true;
  for (const auto& [name, by_query] : rows) {
    if (!first_row) out << ",";
    first_row = false;
    out << "\"" << obs::JsonEscape(name) << "\":{";
    bool first_q = true;
    for (const auto& [q, seconds] : by_query) {
      if (!first_q) out << ",";
      first_q = false;
      char buf[48];
      std::snprintf(buf, sizeof(buf), "\"%d\":%.6g", q, seconds);
      out << buf;
    }
    out << "}";
  }
  out << "}}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench] cannot write %s\n", path.c_str());
    return false;
  }
  const std::string s = out.str();
  std::fwrite(s.data(), 1, s.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "[bench] wrote runtimes JSON to %s\n", path.c_str());
  return true;
}

}  // namespace wimpi::bench
