#include "bench_util.h"

#include <chrono>
#include <cstdio>
#include <cstring>

#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace wimpi::bench {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t FnvMix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

uint64_t RelationChecksum(const exec::Relation& r) {
  uint64_t h = 1469598103934665603ull;
  h = FnvMix(h, static_cast<uint64_t>(r.num_columns()));
  h = FnvMix(h, static_cast<uint64_t>(r.num_rows()));
  const int64_t n = r.num_rows();
  for (int c = 0; c < r.num_columns(); ++c) {
    for (const char ch : r.name(c)) h = FnvMix(h, static_cast<uint64_t>(ch));
    const auto& col = r.column(c);
    h = FnvMix(h, static_cast<uint64_t>(col.type()));
    for (int64_t row = 0; row < n; ++row) {
      switch (col.type()) {
        case storage::DataType::kInt64:
          h = FnvMix(h, static_cast<uint64_t>(col.I64Data()[row]));
          break;
        case storage::DataType::kFloat64: {
          uint64_t bits;
          static_assert(sizeof(bits) == sizeof(double));
          std::memcpy(&bits, &col.F64Data()[row], sizeof(bits));
          h = FnvMix(h, bits);
          break;
        }
        case storage::DataType::kString: {
          const auto sv = col.StringAt(row);
          h = FnvMix(h, sv.size());
          for (const char ch : sv) h = FnvMix(h, static_cast<uint64_t>(ch));
          break;
        }
        default:
          h = FnvMix(h, static_cast<uint64_t>(col.I32Data()[row]));
          break;
      }
    }
  }
  return h;
}

engine::Database LoadDb(double physical_sf, uint64_t seed) {
  std::fprintf(stderr, "[bench] generating TPC-H at physical SF %.3g ...\n",
               physical_sf);
  const auto start = std::chrono::steady_clock::now();
  tpch::GenOptions opts;
  opts.scale_factor = physical_sf;
  opts.seed = seed;
  engine::Database db = tpch::GenerateDatabase(opts);
  const double s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  std::fprintf(stderr, "[bench] generated in %.1fs (%lld lineitem rows)\n",
               s,
               static_cast<long long>(db.table("lineitem").num_rows()));
  return db;
}

std::map<int, QueryRun> CollectQueryStats(
    const engine::Database& db, double scale,
    const std::vector<int>& queries) {
  std::map<int, QueryRun> out;
  for (const int q : queries) {
    QueryRun run;
    const double start = NowSeconds();
    tpch::RunQuery(q, db, &run.stats);
    run.wall_seconds = NowSeconds() - start;
    run.stats.Scale(scale);
    out[q] = std::move(run);
  }
  return out;
}

std::map<int, std::map<std::string, double>> ModelRuntimes(
    const std::map<int, QueryRun>& runs, const hw::CostModel& model) {
  std::map<int, std::map<std::string, double>> out;
  for (const auto& [q, run] : runs) {
    for (const auto& p : hw::AllProfiles()) {
      out[q][p.name] = model.QuerySeconds(p, run.stats);
    }
  }
  return out;
}

std::vector<int> AllQueryNumbers() {
  std::vector<int> qs;
  for (int q = 1; q <= 22; ++q) qs.push_back(q);
  return qs;
}

RunArtifact RuntimesArtifact(
    const std::string& bench_name, double model_sf,
    const std::map<int, std::map<std::string, double>>& runtimes,
    const std::map<int, QueryRun>& runs) {
  RunArtifact a = MakeArtifact(bench_name, model_sf);
  for (const auto& [q, by_profile] : runtimes) {
    const std::string metric = "Q" + std::to_string(q);
    for (const auto& [profile, seconds] : by_profile) {
      a.rows[profile][metric] = seconds;
    }
  }
  for (const auto& [q, run] : runs) {
    a.rows["host"]["Q" + std::to_string(q) + ".wall_seconds"] =
        run.wall_seconds;
  }
  return a;
}

}  // namespace wimpi::bench
