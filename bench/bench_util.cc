#include "bench_util.h"

#include <chrono>
#include <cstdio>

#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace wimpi::bench {

engine::Database LoadDb(double physical_sf, uint64_t seed) {
  std::fprintf(stderr, "[bench] generating TPC-H at physical SF %.3g ...\n",
               physical_sf);
  const auto start = std::chrono::steady_clock::now();
  tpch::GenOptions opts;
  opts.scale_factor = physical_sf;
  opts.seed = seed;
  engine::Database db = tpch::GenerateDatabase(opts);
  const double s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  std::fprintf(stderr, "[bench] generated in %.1fs (%lld lineitem rows)\n",
               s,
               static_cast<long long>(db.table("lineitem").num_rows()));
  return db;
}

std::map<int, exec::QueryStats> CollectQueryStats(
    const engine::Database& db, double scale,
    const std::vector<int>& queries) {
  std::map<int, exec::QueryStats> out;
  for (const int q : queries) {
    exec::QueryStats stats;
    tpch::RunQuery(q, db, &stats);
    stats.Scale(scale);
    out[q] = std::move(stats);
  }
  return out;
}

std::map<int, std::map<std::string, double>> ModelRuntimes(
    const std::map<int, exec::QueryStats>& stats,
    const hw::CostModel& model) {
  std::map<int, std::map<std::string, double>> out;
  for (const auto& [q, s] : stats) {
    for (const auto& p : hw::AllProfiles()) {
      out[q][p.name] = model.QuerySeconds(p, s);
    }
  }
  return out;
}

std::vector<int> AllQueryNumbers() {
  std::vector<int> qs;
  for (int q = 1; q <= 22; ++q) qs.push_back(q);
  return qs;
}

}  // namespace wimpi::bench
